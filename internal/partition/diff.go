package partition

import (
	"fmt"
	"sort"

	"atrapos/internal/lock"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
)

// TableDiffKind classifies how one table's placement changed between two
// placements.
type TableDiffKind int

const (
	// TableUnchanged means the bounds and every core assignment are identical.
	TableUnchanged TableDiffKind = iota
	// TableMoved means the partition boundaries are identical but at least
	// one partition is owned by a different core.
	TableMoved
	// TableRebounded means the partition boundaries themselves changed
	// (splits, merges or resized ranges), possibly along with core moves.
	TableRebounded
)

// String implements fmt.Stringer.
func (k TableDiffKind) String() string {
	switch k {
	case TableUnchanged:
		return "unchanged"
	case TableMoved:
		return "moved"
	case TableRebounded:
		return "rebounded"
	default:
		return fmt.Sprintf("TableDiffKind(%d)", int(k))
	}
}

// TableDiff describes how one table's placement changed.
type TableDiff struct {
	Table string
	Kind  TableDiffKind
	// Moved lists the partition indices (in the desired placement) whose
	// owning core changed. For TableMoved tables it is exact; for
	// TableRebounded tables it lists every desired partition whose
	// (lower bound, upper bound, core) triple has no identical counterpart
	// in the current placement.
	Moved []int
}

// PlanDiff is the structured difference between the current placement and a
// desired one: which tables are untouched, which only moved partitions
// between cores, and which changed their partition boundaries. The adaptive
// pipeline migrates only what the diff names; everything else is reused.
type PlanDiff struct {
	Old, New *Placement
	Tables   map[string]*TableDiff
}

// Diff computes the structured difference between two placements. Tables
// present only in desired are reported as TableRebounded (a full build);
// tables present only in current are dropped silently, mirroring how a
// fresh NewRuntime would simply not carry them.
func Diff(current, desired *Placement) *PlanDiff {
	d := &PlanDiff{Old: current, New: desired, Tables: make(map[string]*TableDiff, len(desired.Tables))}
	for name, want := range desired.Tables {
		td := &TableDiff{Table: name}
		have, ok := current.Tables[name]
		if !ok {
			td.Kind = TableRebounded
			for i := range want.Bounds {
				td.Moved = append(td.Moved, i)
			}
			d.Tables[name] = td
			continue
		}
		if boundsEqual(have.Bounds, want.Bounds) {
			for i := range want.Cores {
				if want.Cores[i] != have.Cores[i] {
					td.Moved = append(td.Moved, i)
				}
			}
			if len(td.Moved) > 0 {
				td.Kind = TableMoved
			}
			d.Tables[name] = td
			continue
		}
		td.Kind = TableRebounded
		for i := range want.Bounds {
			if j, ok := matchingPartition(have, want, i); !ok || have.Cores[j] != want.Cores[i] {
				td.Moved = append(td.Moved, i)
			}
		}
		d.Tables[name] = td
	}
	return d
}

// matchingPartition finds the partition of have covering exactly the same key
// range as partition i of want, if one exists. The last partition's upper
// bound is open-ended, so last matches only last.
func matchingPartition(have, want *TablePlacement, i int) (int, bool) {
	lo := want.Bounds[i]
	j := sort.Search(len(have.Bounds), func(k int) bool { return have.Bounds[k] >= lo })
	if j >= len(have.Bounds) || have.Bounds[j] != lo {
		return 0, false
	}
	iLast := i == len(want.Bounds)-1
	jLast := j == len(have.Bounds)-1
	if iLast != jLast {
		return 0, false
	}
	if !iLast && have.Bounds[j+1] != want.Bounds[i+1] {
		return 0, false
	}
	return j, true
}

func boundsEqual(a, b []schema.Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Empty reports whether the diff changes nothing.
func (d *PlanDiff) Empty() bool {
	for _, td := range d.Tables {
		if td.Kind != TableUnchanged {
			return false
		}
	}
	return true
}

// UnchangedTables counts the tables the diff leaves untouched.
func (d *PlanDiff) UnchangedTables() int {
	n := 0
	for _, td := range d.Tables {
		if td.Kind == TableUnchanged {
			n++
		}
	}
	return n
}

// ChangedTables counts the tables the diff touches.
func (d *PlanDiff) ChangedTables() int { return len(d.Tables) - d.UnchangedTables() }

// ReboundTables counts the tables whose partition boundaries changed.
func (d *PlanDiff) ReboundTables() int {
	n := 0
	for _, td := range d.Tables {
		if td.Kind == TableRebounded {
			n++
		}
	}
	return n
}

// MovedPartitions counts the partitions (across all tables) whose owning core
// or key range changed; it is the size of the migration the diff implies.
func (d *PlanDiff) MovedPartitions() int {
	n := 0
	for _, td := range d.Tables {
		n += len(td.Moved)
	}
	return n
}

// AffectedCores returns the distinct cores that own a changed partition in
// either the old or the new placement. These are the cores that pause for
// the migration; cores whose partitions did not move keep executing.
func (d *PlanDiff) AffectedCores() []topology.CoreID {
	seen := make(map[topology.CoreID]struct{})
	for name, td := range d.Tables {
		if td.Kind == TableUnchanged {
			continue
		}
		want := d.New.Tables[name]
		have := d.Old.Tables[name]
		switch td.Kind {
		case TableMoved:
			for _, i := range td.Moved {
				seen[want.Cores[i]] = struct{}{}
				if have != nil && i < len(have.Cores) {
					seen[have.Cores[i]] = struct{}{}
				}
			}
		case TableRebounded:
			// Boundary changes redistribute rows across the whole table:
			// every owner of the table, old and new, participates.
			for _, c := range want.Cores {
				seen[c] = struct{}{}
			}
			if have != nil {
				for _, c := range have.Cores {
					seen[c] = struct{}{}
				}
			}
		}
	}
	out := make([]topology.CoreID, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ApplyStats reports how much of the previous runtime an ApplyDiff reused.
type ApplyStats struct {
	// ReusedTables counts tables whose entire runtime slice was carried over.
	ReusedTables int
	// ReusedManagers counts individual partition lock tables carried over.
	ReusedManagers int
	// RebuiltManagers counts partition lock tables built fresh (the moved
	// key sub-ranges and re-homed partitions).
	RebuiltManagers int
}

// ApplyDiff derives the runtime for placement p from r, reusing the lock
// tables (and thereby the NUMA homes) of every partition the diff reports
// unchanged and rebuilding only the moved ones. Unchanged tables share the
// previous runtime's slice; for rebounded tables each desired partition that
// still covers the same key range on the same socket keeps its lock table.
//
// The receiver is not modified: workers holding the previous snapshot keep a
// consistent runtime, and transactions spanning the switch release their
// locks on the managers they acquired them from. ApplyDiff with a nil diff
// (or a diff computed against a different placement) falls back to a full
// rebuild, which is always correct.
func (r *Runtime) ApplyDiff(p *Placement, diff *PlanDiff) (*Runtime, ApplyStats) {
	var stats ApplyStats
	out := &Runtime{domain: r.domain, locks: make(map[string][]*lock.LocalManager, len(p.Tables))}
	for name, tp := range p.Tables {
		var td *TableDiff
		if diff != nil {
			td = diff.Tables[name]
		}
		old := r.locks[name]
		if td != nil && td.Kind == TableUnchanged && len(old) == len(tp.Cores) {
			out.locks[name] = old
			stats.ReusedTables++
			stats.ReusedManagers += len(old)
			continue
		}
		ms := make([]*lock.LocalManager, len(tp.Cores))
		switch {
		case td != nil && td.Kind == TableMoved && len(old) == len(tp.Cores):
			copy(ms, old)
			stats.ReusedManagers += len(ms)
			for _, i := range td.Moved {
				ms[i] = lock.NewLocalManagerAt(r.domain, tp.Cores[i])
				stats.ReusedManagers--
				stats.RebuiltManagers++
			}
		case td != nil && td.Kind == TableRebounded && diff.Old != nil && diff.Old.Tables[name] != nil:
			have := diff.Old.Tables[name]
			top := r.domain.Top
			for i, core := range tp.Cores {
				// A surviving lock table is reusable only if it is homed on the
				// new owner's island: the same socket and, on hierarchical
				// machines, the same die.
				if j, ok := matchingPartition(have, tp, i); ok && j < len(old) && old[j] != nil &&
					old[j].Home() == top.SocketOf(core) && old[j].HomeDie() == top.DieOf(core) {
					ms[i] = old[j]
					stats.ReusedManagers++
					continue
				}
				ms[i] = lock.NewLocalManagerAt(r.domain, core)
				stats.RebuiltManagers++
			}
		default:
			for i, core := range tp.Cores {
				ms[i] = lock.NewLocalManagerAt(r.domain, core)
				stats.RebuiltManagers++
			}
		}
		out.locks[name] = ms
	}
	return out, stats
}

// Validate checks that the runtime is structurally equivalent to a fresh
// NewRuntime build for placement p: every table is present with one lock
// manager per partition, and every manager is homed on the island of the
// partition's owning core (its socket and its die). It is the invariant
// ApplyDiff must preserve; the engine refuses to install a snapshot whose
// runtime fails it.
func (r *Runtime) Validate(p *Placement) error {
	if len(r.locks) != len(p.Tables) {
		return fmt.Errorf("partition: runtime has %d tables, placement has %d", len(r.locks), len(p.Tables))
	}
	for name, tp := range p.Tables {
		ms, ok := r.locks[name]
		if !ok {
			return fmt.Errorf("partition: runtime is missing table %q", name)
		}
		if len(ms) != len(tp.Cores) {
			return fmt.Errorf("partition: table %q runtime has %d partitions, placement has %d", name, len(ms), len(tp.Cores))
		}
		for i, m := range ms {
			if m == nil {
				return fmt.Errorf("partition: table %q partition %d has no lock table", name, i)
			}
			if want := r.domain.Top.SocketOf(tp.Cores[i]); m.Home() != want {
				return fmt.Errorf("partition: table %q partition %d lock table homed on socket %d, owner core %d is on socket %d",
					name, i, m.Home(), tp.Cores[i], want)
			}
			if want := r.domain.Top.DieOf(tp.Cores[i]); m.HomeDie() != want {
				return fmt.Errorf("partition: table %q partition %d lock table homed on die %d, owner core %d is on die %d",
					name, i, m.HomeDie(), tp.Cores[i], want)
			}
		}
	}
	return nil
}
