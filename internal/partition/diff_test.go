package partition

import (
	"testing"

	"atrapos/internal/btree"
	"atrapos/internal/numa"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
)

func TestPartitionForBoundaryValues(t *testing.T) {
	tp := &TablePlacement{
		Table:  "t",
		Bounds: []schema.Key{0, 100, 200},
		Cores:  []topology.CoreID{1, 2, 3},
	}
	cases := []struct {
		key  int64
		want int
	}{
		{0, 0},          // first bound
		{99, 0},         // just below an internal bound
		{100, 1},        // exactly an internal bound belongs to the right
		{200, 2},        // exactly the last bound
		{201, 2},        // beyond the last bound
		{1 << 60, 2},    // far beyond the key space
		{-1, 0},         // below the first bound clamps to the first partition
		{-(1 << 60), 0}, // arbitrarily negative keys clamp too
	}
	for _, c := range cases {
		if got := tp.PartitionFor(schema.KeyFromInt(c.key)); got != c.want {
			t.Errorf("PartitionFor(%d) = %d, want %d", c.key, got, c.want)
		}
		if got := tp.CoreFor(schema.KeyFromInt(c.key)); got != tp.Cores[c.want] {
			t.Errorf("CoreFor(%d) = %d, want %d", c.key, got, tp.Cores[c.want])
		}
	}

	single := &TablePlacement{Table: "s", Bounds: []schema.Key{0}, Cores: []topology.CoreID{7}}
	for _, key := range []int64{-5, 0, 1, 1 << 62} {
		if got := single.PartitionFor(schema.KeyFromInt(key)); got != 0 {
			t.Errorf("single-partition PartitionFor(%d) = %d, want 0", key, got)
		}
		if got := single.CoreFor(schema.KeyFromInt(key)); got != 7 {
			t.Errorf("single-partition CoreFor(%d) = %d, want 7", key, got)
		}
	}
}

func TestValidateAlive(t *testing.T) {
	top := smallTop()
	p := NaivePerCore(top, []TableSpec{{Name: "a", MaxKey: 1600}})
	if err := p.ValidateAlive(top); err != nil {
		t.Fatalf("placement on live topology rejected: %v", err)
	}
	if err := top.FailSocket(3); err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateAlive(top); err == nil {
		t.Error("placement using a failed socket's cores must be rejected")
	}
	bad := NewPlacement()
	bad.Tables["b"] = &TablePlacement{Table: "b", Bounds: []schema.Key{0}, Cores: []topology.CoreID{999}}
	if err := bad.ValidateAlive(top); err == nil {
		t.Error("placement using an unknown core must be rejected")
	}
}

// twoTablePlacement builds a two-table placement over the small topology.
func twoTablePlacement() *Placement {
	p := NewPlacement()
	p.Tables["a"] = &TablePlacement{Table: "a", Bounds: btree.UniformBounds(1000, 4), Cores: []topology.CoreID{0, 1, 2, 3}}
	p.Tables["b"] = &TablePlacement{Table: "b", Bounds: []schema.Key{0}, Cores: []topology.CoreID{4}}
	return p
}

func TestDiffClassifiesTables(t *testing.T) {
	cur := twoTablePlacement()

	// Identical placements: everything unchanged, diff empty.
	d := Diff(cur, cur.Clone())
	if !d.Empty() || d.UnchangedTables() != 2 || d.ChangedTables() != 0 || d.MovedPartitions() != 0 {
		t.Errorf("identical placements: %+v", d)
	}
	if cores := d.AffectedCores(); len(cores) != 0 {
		t.Errorf("identical placements affect cores %v", cores)
	}

	// Move one partition of a to another core: TableMoved, b unchanged.
	moved := cur.Clone()
	moved.Tables["a"].Cores[2] = 9
	d = Diff(cur, moved)
	if d.Tables["a"].Kind != TableMoved || len(d.Tables["a"].Moved) != 1 || d.Tables["a"].Moved[0] != 2 {
		t.Errorf("move diff: %+v", d.Tables["a"])
	}
	if d.Tables["b"].Kind != TableUnchanged {
		t.Errorf("table b should be unchanged, got %v", d.Tables["b"].Kind)
	}
	if d.Empty() || d.UnchangedTables() != 1 || d.MovedPartitions() != 1 {
		t.Errorf("move diff summary: unchanged=%d moved=%d", d.UnchangedTables(), d.MovedPartitions())
	}
	// Affected cores: the old owner (2) and the new owner (9).
	cores := d.AffectedCores()
	if len(cores) != 2 || cores[0] != 2 || cores[1] != 9 {
		t.Errorf("affected cores = %v, want [2 9]", cores)
	}

	// Change a's bounds: TableRebounded.
	rb := cur.Clone()
	rb.Tables["a"].Bounds = btree.UniformBounds(1000, 3)
	rb.Tables["a"].Cores = []topology.CoreID{0, 1, 2}
	d = Diff(cur, rb)
	if d.Tables["a"].Kind != TableRebounded {
		t.Errorf("rebound diff kind = %v", d.Tables["a"].Kind)
	}
	if d.ReboundTables() != 1 {
		t.Errorf("ReboundTables = %d", d.ReboundTables())
	}

	// A table absent from the current placement is a full build.
	grown := cur.Clone()
	grown.Tables["c"] = &TablePlacement{Table: "c", Bounds: []schema.Key{0, 10}, Cores: []topology.CoreID{5, 6}}
	d = Diff(cur, grown)
	if d.Tables["c"].Kind != TableRebounded || len(d.Tables["c"].Moved) != 2 {
		t.Errorf("new-table diff: %+v", d.Tables["c"])
	}
}

func TestDiffReboundedMatchesIdenticalRanges(t *testing.T) {
	// Splitting only the last partition keeps the first two (same bounds,
	// same upper bound, same core) out of the Moved list.
	cur := NewPlacement()
	cur.Tables["a"] = &TablePlacement{Table: "a", Bounds: []schema.Key{0, 100, 200}, Cores: []topology.CoreID{0, 1, 2}}
	want := NewPlacement()
	want.Tables["a"] = &TablePlacement{Table: "a", Bounds: []schema.Key{0, 100, 200, 300}, Cores: []topology.CoreID{0, 1, 2, 3}}
	d := Diff(cur, want)
	td := d.Tables["a"]
	if td.Kind != TableRebounded {
		t.Fatalf("kind = %v", td.Kind)
	}
	// Partitions 0 and 1 cover identical ranges on identical cores; 2 (its
	// upper bound shrank from open-ended to 300) and 3 (new) moved.
	if len(td.Moved) != 2 || td.Moved[0] != 2 || td.Moved[1] != 3 {
		t.Errorf("moved = %v, want [2 3]", td.Moved)
	}
}

func TestApplyDiffReusesRuntimeState(t *testing.T) {
	top := smallTop()
	dom := numa.MustNewDomain(top, numa.DefaultCostModel())
	cur := twoTablePlacement()
	rt := NewRuntime(dom, cur)

	// Unchanged table: the whole slice is shared, manager pointers identical.
	next := cur.Clone()
	next.Tables["a"].Cores[1] = 9
	diff := Diff(cur, next)
	rt2, stats := rt.ApplyDiff(next, diff)
	if err := rt2.Validate(next); err != nil {
		t.Fatalf("diffed runtime invalid: %v", err)
	}
	if stats.ReusedTables != 1 {
		t.Errorf("ReusedTables = %d, want 1 (table b)", stats.ReusedTables)
	}
	if stats.RebuiltManagers != 1 {
		t.Errorf("RebuiltManagers = %d, want 1 (moved partition)", stats.RebuiltManagers)
	}
	bOld, _ := rt.Locks("b", 0)
	bNew, _ := rt2.Locks("b", 0)
	if bOld != bNew {
		t.Error("unchanged table b should keep its lock table")
	}
	for i := 0; i < 4; i++ {
		old, _ := rt.Locks("a", i)
		now, _ := rt2.Locks("a", i)
		if i == 1 {
			if old == now {
				t.Error("moved partition should get a fresh lock table")
			}
			if now.Home() != top.SocketOf(9) {
				t.Errorf("moved partition homed on %d, want %d", now.Home(), top.SocketOf(9))
			}
		} else if old != now {
			t.Errorf("partition %d of moved table should keep its lock table", i)
		}
	}

	// The old runtime is untouched.
	if err := rt.Validate(cur); err != nil {
		t.Errorf("previous runtime corrupted by ApplyDiff: %v", err)
	}

	// Rebounded table: partitions covering identical ranges on the same
	// socket keep their managers.
	rb := cur.Clone()
	rb.Tables["a"].Bounds = []schema.Key{0, 250, 500, 750, 900}
	rb.Tables["a"].Cores = []topology.CoreID{0, 1, 2, 3, 4}
	diff = Diff(cur, rb)
	rt3, stats3 := rt.ApplyDiff(rb, diff)
	if err := rt3.Validate(rb); err != nil {
		t.Fatalf("rebounded runtime invalid: %v", err)
	}
	// Bounds 0,250,500,750 match the uniform 4-way split of 1000: the first
	// three keep identical (lo,hi) ranges and cores; only the split tail is new.
	if stats3.ReusedManagers < 3 {
		t.Errorf("rebounded reuse = %+v, want >= 3 reused managers", stats3)
	}

	// A nil diff falls back to a full rebuild and still validates.
	rt4, stats4 := rt.ApplyDiff(next, nil)
	if err := rt4.Validate(next); err != nil {
		t.Fatalf("full-rebuild runtime invalid: %v", err)
	}
	if stats4.ReusedManagers != 0 || stats4.ReusedTables != 0 {
		t.Errorf("nil diff should rebuild everything, got %+v", stats4)
	}
}

// TestDiffAcrossIslandLevels diffs PerIsland placements of different
// granularities against each other — the cross-level diff an online
// island-level change applies. A level change on a machine where the two
// levels' islands coincide (one die per socket: die islands == socket
// islands) must diff as completely unchanged and reuse the whole runtime; a
// genuine merge rebounds the tables, the derived runtime still validates
// against a fresh build, and partitions whose key range and island home
// survive are reused.
func TestDiffAcrossIslandLevels(t *testing.T) {
	specs := []TableSpec{{Name: "t", MaxKey: 8000}}

	// One die per socket: die and socket islands are the same core sets.
	flat := topology.MustNew(topology.Config{Sockets: 2, CoresPerSocket: 4})
	dom := numa.MustNewDomain(flat, numa.DefaultCostModel())
	die := PerIsland(flat, topology.LevelDie, specs)
	sock := PerIsland(flat, topology.LevelSocket, specs)
	diff := Diff(die, sock)
	if !diff.Empty() {
		t.Fatalf("die and socket islands coincide on a flat machine; diff should be empty: %+v", diff.Tables["t"])
	}
	rt := NewRuntime(dom, die)
	rt2, stats := rt.ApplyDiff(sock, diff)
	if err := rt2.Validate(sock); err != nil {
		t.Fatalf("cross-level runtime invalid: %v", err)
	}
	if stats.ReusedTables != 1 || stats.RebuiltManagers != 0 {
		t.Errorf("coinciding levels should reuse everything: %+v", stats)
	}

	// A genuine core->socket merge rebounds the table; the runtime still
	// validates, and the partition whose range and home survive (core 0's
	// [0,4000) range equals socket 0's when 2 sockets halve what 2 of 8 cores
	// quartered... here: no range survives, so everything rebuilds).
	core := PerIsland(flat, topology.LevelCore, specs)
	diff2 := Diff(core, sock)
	td := diff2.Tables["t"]
	if td.Kind != TableRebounded {
		t.Fatalf("core->socket merge should rebound, got %v", td.Kind)
	}
	rtCore := NewRuntime(dom, core)
	rt3, _ := rtCore.ApplyDiff(sock, diff2)
	if err := rt3.Validate(sock); err != nil {
		t.Fatalf("merged runtime invalid: %v", err)
	}
	// Affected cores are the union of old and new owners — the cores that
	// pause; with 8 core-grained owners merging onto 2 socket homes that is
	// all 8, but never more than the owners involved.
	if got := len(diff2.AffectedCores()); got != 8 {
		t.Errorf("core->socket merge affects %d cores, want 8", got)
	}

	// After a socket failure the surviving socket island equals the machine
	// island: a socket->machine change on the degraded machine diffs
	// unchanged (the die island surviving a merge keeps its structures).
	failed := topology.MustNew(topology.Config{Sockets: 2, CoresPerSocket: 4})
	if err := failed.FailSocket(1); err != nil {
		t.Fatal(err)
	}
	domF := numa.MustNewDomain(failed, numa.DefaultCostModel())
	sockF := PerIsland(failed, topology.LevelSocket, specs)
	machF := PerIsland(failed, topology.LevelMachine, specs)
	diffF := Diff(sockF, machF)
	if !diffF.Empty() {
		t.Fatalf("surviving socket island == machine island; diff should be empty: %+v", diffF.Tables["t"])
	}
	rtF := NewRuntime(domF, sockF)
	rtF2, statsF := rtF.ApplyDiff(machF, diffF)
	if err := rtF2.Validate(machF); err != nil {
		t.Fatalf("post-failure cross-level runtime invalid: %v", err)
	}
	if statsF.ReusedManagers != 1 {
		t.Errorf("surviving island should keep its lock table: %+v", statsF)
	}
}

func TestRuntimeValidateCatchesMismatches(t *testing.T) {
	top := smallTop()
	dom := numa.MustNewDomain(top, numa.DefaultCostModel())
	p := twoTablePlacement()
	rt := NewRuntime(dom, p)

	missing := p.Clone()
	missing.Tables["c"] = &TablePlacement{Table: "c", Bounds: []schema.Key{0}, Cores: []topology.CoreID{0}}
	if err := rt.Validate(missing); err == nil {
		t.Error("runtime missing a table must fail validation")
	}

	shrunk := p.Clone()
	shrunk.Tables["a"].Bounds = shrunk.Tables["a"].Bounds[:2]
	shrunk.Tables["a"].Cores = shrunk.Tables["a"].Cores[:2]
	if err := rt.Validate(shrunk); err == nil {
		t.Error("partition-count mismatch must fail validation")
	}

	// Re-homing a partition's owner without rebuilding its lock table is the
	// torn state Validate exists to catch: core 12 lives on another socket.
	rehomed := p.Clone()
	rehomed.Tables["a"].Cores[0] = 12
	if err := rt.Validate(rehomed); err == nil {
		t.Error("lock table homed on the wrong socket must fail validation")
	}
}
