package device

import (
	"fmt"
	"sort"
	"strings"

	"atrapos/internal/topology"
)

// Scope says how many physical devices a layout provisions on a machine.
type Scope int

const (
	// ScopePerSocket provisions one device per socket, attached to the
	// socket's first die (the IO-die layout of chiplet parts).
	ScopePerSocket Scope = iota + 1
	// ScopePerDiePair provisions one device per pair of adjacent dies (global
	// die order), attached to the even die of the pair. On flat machines a
	// "die pair" is a socket pair, which models two sockets sharing one
	// controller.
	ScopePerDiePair
	// ScopeSingle provisions a single device for the whole machine, attached
	// to socket 0's first die.
	ScopeSingle
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	switch s {
	case ScopePerSocket:
		return "per-socket"
	case ScopePerDiePair:
		return "per-die-pair"
	case ScopeSingle:
		return "single"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// Layout is a named storage shape: which class of log device the machine has
// and how many. Together with a topology it instantiates a Map.
type Layout struct {
	// Name is the identifier used by configuration and BENCH.json.
	Name string
	// Description says what storage configuration the layout models.
	Description string
	// Template is the device class every device of the layout instantiates;
	// Build fills in the per-device Name/Socket/Die.
	Template Spec
	// Scope is how many devices the layout provisions.
	Scope Scope
}

// Layouts returns the built-in log-device layouts, most parallel first.
func Layouts() []Layout {
	return []Layout{
		{
			Name:        "nvme-per-socket",
			Description: "one NVMe namespace per socket behind the socket's IO die",
			Template:    Spec{Class: "nvme", FlushLatency: 12000, PerByteCost: 0, QueueDepth: 4},
			Scope:       ScopePerSocket,
		},
		{
			Name:        "nvme-per-die-pair",
			Description: "one shared NVMe device per pair of dies (two islands contend for one flush path)",
			Template:    Spec{Class: "nvme-shared", FlushLatency: 16000, PerByteCost: 0, QueueDepth: 2},
			Scope:       ScopePerDiePair,
		},
		{
			Name:        "single-sata",
			Description: "a single SATA-class device behind one controller (consumer boards, every commit serializes)",
			Template:    Spec{Class: "sata", FlushLatency: 36000, PerByteCost: 1, QueueDepth: 1},
			Scope:       ScopeSingle,
		},
	}
}

// LayoutByName looks a layout up by its Name.
func LayoutByName(name string) (Layout, bool) {
	for _, l := range Layouts() {
		if l.Name == name {
			return l, true
		}
	}
	return Layout{}, false
}

// LayoutNames returns the names of the built-in layouts, sorted.
func LayoutNames() []string {
	out := make([]string, 0, len(Layouts()))
	for _, l := range Layouts() {
		out = append(out, l.Name)
	}
	sort.Strings(out)
	return out
}

// BuildLayout instantiates a named layout's device map on a machine, erroring
// with the known names on a miss so CLI flags produce a helpful message.
func BuildLayout(name string, top *topology.Topology) (*Map, error) {
	l, ok := LayoutByName(name)
	if !ok {
		return nil, fmt.Errorf("device: unknown log-device layout %q (known: %s)",
			name, strings.Join(LayoutNames(), ", "))
	}
	return l.Build(top), nil
}

// Map is a layout instantiated on one machine: the physical devices plus the
// die-to-device assignment the island wirings bind their logs through. The
// assignment is per die — the finest level at which a log can be homed — so
// an island at any level resolves its device through its home die. The Map is
// engine-lifetime: island wirings come and go with level changes, but the
// device a die flushes through never moves, which is what lets a re-wiring
// reuse device bindings the way it reuses island logs.
type Map struct {
	layout  string
	devices []*Device
	// byDie maps the global die index to the index of its device.
	byDie []int
}

// Build instantiates the layout's devices on the machine.
func (l Layout) Build(top *topology.Topology) *Map {
	m := &Map{layout: l.Name, byDie: make([]int, top.NumDies())}
	addDevice := func(die topology.DieID) int {
		spec := l.Template
		spec.Name = fmt.Sprintf("%s-%d", spec.Class, len(m.devices))
		spec.Die = die
		spec.Socket = top.SocketOfDie(die)
		m.devices = append(m.devices, New(spec))
		return len(m.devices) - 1
	}
	switch l.Scope {
	case ScopePerDiePair:
		for d := 0; d < top.NumDies(); d += 2 {
			idx := addDevice(topology.DieID(d))
			m.byDie[d] = idx
			if d+1 < top.NumDies() {
				m.byDie[d+1] = idx
			}
		}
	case ScopeSingle:
		idx := addDevice(top.FirstDieOn(0))
		for d := range m.byDie {
			m.byDie[d] = idx
		}
	default: // ScopePerSocket
		for s := 0; s < top.Sockets(); s++ {
			idx := addDevice(top.FirstDieOn(topology.SocketID(s)))
			for d := 0; d < top.DiesPerSocket(); d++ {
				m.byDie[int(top.FirstDieOn(topology.SocketID(s)))+d] = idx
			}
		}
	}
	return m
}

// Layout returns the name of the layout the map was built from.
func (m *Map) Layout() string { return m.layout }

// NumDevices returns how many physical devices the map provisions.
func (m *Map) NumDevices() int { return len(m.devices) }

// Devices returns the map's devices. The slice must not be modified.
func (m *Map) Devices() []*Device { return m.devices }

// DeviceFor returns the device serving the given die. Unknown dies fall back
// to device 0, mirroring the out-of-range behaviour of the per-island logs.
func (m *Map) DeviceFor(die topology.DieID) *Device {
	if int(die) >= 0 && int(die) < len(m.byDie) {
		return m.devices[m.byDie[die]]
	}
	return m.devices[0]
}

// Device returns device i, or an error when the index is out of range.
func (m *Map) Device(i int) (*Device, error) {
	if i < 0 || i >= len(m.devices) {
		return nil, fmt.Errorf("device: layout %s has no device %d (have %d)", m.layout, i, len(m.devices))
	}
	return m.devices[i], nil
}

// FailDevice marks device i failed. It refuses to fail an already-failed
// device and to fail the last alive device of the map — the model needs at
// least one surviving flush path to re-home island logs onto, the same way
// the topology always keeps at least one socket alive.
func (m *Map) FailDevice(i int) error {
	d, err := m.Device(i)
	if err != nil {
		return err
	}
	if d.Failed() {
		return fmt.Errorf("device: device %d (%s) is already failed", i, d.spec.Name)
	}
	alive := 0
	for _, x := range m.devices {
		if !x.Failed() {
			alive++
		}
	}
	if alive <= 1 {
		return fmt.Errorf("device: cannot fail device %d (%s): it is the last alive device of layout %s", i, d.spec.Name, m.layout)
	}
	d.Fail()
	return nil
}

// RestoreDevice clears the failed mark on device i, erroring when the device
// is not failed (mirroring Engine.RestoreSocket).
func (m *Map) RestoreDevice(i int) error {
	d, err := m.Device(i)
	if err != nil {
		return err
	}
	if !d.Failed() {
		return fmt.Errorf("device: device %d (%s) is not failed", i, d.spec.Name)
	}
	d.Restore()
	return nil
}

// DegradeDevice sets device i's latency factor. Factors below one are
// rejected rather than clamped so a schedule typo surfaces as an error.
func (m *Map) DegradeDevice(i int, factor float64) error {
	d, err := m.Device(i)
	if err != nil {
		return err
	}
	if factor < 1 {
		return fmt.Errorf("device: degrade factor %v for device %d must be >= 1", factor, i)
	}
	d.Degrade(factor)
	return nil
}

// AliveDeviceFor returns the device serving the given die, re-homed to the
// lowest-index alive device when the die's own device has failed, or nil when
// every device of the map has failed. The lowest-index rule keeps re-homing
// deterministic; devices are laid out in die order, so low indices are also
// topologically close.
func (m *Map) AliveDeviceFor(die topology.DieID) *Device {
	d := m.DeviceFor(die)
	if !d.Failed() {
		return d
	}
	for _, cand := range m.devices {
		if !cand.Failed() {
			return cand
		}
	}
	return nil
}

// ResetFaults restores every device to healthy full speed. Fault state
// deliberately survives Reset — it models hardware condition, not run state,
// exactly like topology socket liveness — so tests and the fuzzer clear it
// explicitly.
func (m *Map) ResetFaults() {
	for _, d := range m.devices {
		d.Restore()
		d.Degrade(1)
	}
}

// Reset clears the queue state of every device (between runs).
func (m *Map) Reset() {
	for _, d := range m.devices {
		d.Reset()
	}
}

// Stats sums the per-device counters.
func (m *Map) Stats() Stats {
	var out Stats
	for _, d := range m.devices {
		st := d.Stats()
		out.Flushes += st.Flushes
		out.Queued += st.Queued
		out.QueueWait += st.QueueWait
	}
	return out
}
