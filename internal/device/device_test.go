package device

import (
	"testing"

	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

func TestFlushQueueing(t *testing.T) {
	d := New(Spec{Name: "d", Class: "sata", FlushLatency: 100, QueueDepth: 1})
	// First flush at t=0: no wait, pure service.
	if got := d.Flush(0, 0); got != 100 {
		t.Fatalf("first flush cost %d, want 100", got)
	}
	// Second flush also at t=0: the channel is busy until 100, so it waits
	// 100 and then pays its own service.
	if got := d.Flush(0, 0); got != 200 {
		t.Fatalf("queued flush cost %d, want 200", got)
	}
	// A flush arriving after the queue drained pays only service.
	if got := d.Flush(500, 0); got != 100 {
		t.Fatalf("late flush cost %d, want 100", got)
	}
	st := d.Stats()
	if st.Flushes != 3 || st.Queued != 1 || st.QueueWait != 100 {
		t.Fatalf("stats = %+v, want 3 flushes, 1 queued, 100 wait", st)
	}
}

func TestFlushQueueDepthAbsorbsParallelism(t *testing.T) {
	d := New(Spec{Name: "d", Class: "nvme", FlushLatency: 100, QueueDepth: 2})
	// The deeper queue halves the wait behind a given backlog: flushes drain
	// through two channels in parallel.
	if got := d.Flush(0, 0); got != 100 {
		t.Fatalf("flush 1 cost %d, want 100", got)
	}
	if got := d.Flush(0, 0); got != 150 {
		t.Fatalf("flush 2 cost %d, want 150 (100 backlog over 2 channels)", got)
	}
	if got := d.Flush(0, 0); got != 200 {
		t.Fatalf("flush 3 cost %d, want 200 (200 backlog over 2 channels)", got)
	}
	// The same arrivals on a depth-1 device wait twice as long.
	shallow := New(Spec{FlushLatency: 100, QueueDepth: 1})
	shallow.Flush(0, 0)
	if got := shallow.Flush(0, 0); got != 200 {
		t.Fatalf("depth-1 flush 2 cost %d, want 200", got)
	}
}

func TestFlushSkewDoesNotCompound(t *testing.T) {
	// A flush issued with a clock far behind the device's latest arrival must
	// not pay the skew as contention: waits are bounded by the backlog, not
	// by the distance between unsynchronized per-core clocks.
	d := New(Spec{FlushLatency: 100, QueueDepth: 1})
	d.Flush(1_000_000, 0)
	if got := d.Flush(0, 0); got != 200 {
		t.Fatalf("lagging flush cost %d, want 200 (service + 100 backlog, not 1ms of skew)", got)
	}
}

func TestFlushPerByteCost(t *testing.T) {
	d := New(Spec{FlushLatency: 100, PerByteCost: 2, QueueDepth: 1})
	if got := d.Flush(0, 50); got != 200 {
		t.Fatalf("flush with 50 bytes cost %d, want 100+2*50", got)
	}
	if got := d.Service(10); got != 120 {
		t.Fatalf("service(10) = %d, want 120", got)
	}
}

func TestReset(t *testing.T) {
	d := New(Spec{FlushLatency: 100, QueueDepth: 1})
	d.Flush(0, 0)
	d.Flush(0, 0)
	d.Reset()
	if got := d.Flush(0, 0); got != 100 {
		t.Fatalf("flush after reset cost %d, want 100 (no phantom queue)", got)
	}
	if st := d.Stats(); st.Flushes != 1 || st.Queued != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
}

func TestNormalization(t *testing.T) {
	d := New(Spec{FlushLatency: -5, PerByteCost: -1, QueueDepth: 0})
	if s := d.Spec(); s.QueueDepth != 1 || s.FlushLatency != 0 || s.PerByteCost != 0 {
		t.Fatalf("degenerate spec not normalized: %+v", s)
	}
	if got := d.Flush(0, 100); got != 0 {
		t.Fatalf("zero-cost device flush cost %d, want 0", got)
	}
}

func TestLayoutPerSocket(t *testing.T) {
	top := topology.MustNew(topology.Config{Sockets: 2, CoresPerSocket: 16, DiesPerSocket: 4})
	l, ok := LayoutByName("nvme-per-socket")
	if !ok {
		t.Fatal("nvme-per-socket missing")
	}
	m := l.Build(top)
	if m.NumDevices() != 2 {
		t.Fatalf("per-socket layout built %d devices on a 2-socket box, want 2", m.NumDevices())
	}
	for d := 0; d < top.NumDies(); d++ {
		dev := m.DeviceFor(topology.DieID(d))
		if dev.Spec().Socket != top.SocketOfDie(topology.DieID(d)) {
			t.Errorf("die %d served by device on socket %d, want its own socket %d",
				d, dev.Spec().Socket, top.SocketOfDie(topology.DieID(d)))
		}
	}
}

func TestLayoutPerDiePair(t *testing.T) {
	top := topology.MustNew(topology.Config{Sockets: 2, CoresPerSocket: 16, DiesPerSocket: 4})
	l, _ := LayoutByName("nvme-per-die-pair")
	m := l.Build(top)
	if m.NumDevices() != 4 {
		t.Fatalf("die-pair layout built %d devices for 8 dies, want 4", m.NumDevices())
	}
	for d := 0; d < top.NumDies(); d += 2 {
		if m.DeviceFor(topology.DieID(d)) != m.DeviceFor(topology.DieID(d+1)) {
			t.Errorf("dies %d and %d should share one device", d, d+1)
		}
	}
	if m.DeviceFor(0) == m.DeviceFor(2) {
		t.Error("dies 0 and 2 are different pairs and should not share a device")
	}
}

func TestLayoutSingle(t *testing.T) {
	top := topology.MustNew(topology.Config{Sockets: 4, CoresPerSocket: 4})
	l, _ := LayoutByName("single-sata")
	m := l.Build(top)
	if m.NumDevices() != 1 {
		t.Fatalf("single layout built %d devices, want 1", m.NumDevices())
	}
	for d := 0; d < top.NumDies(); d++ {
		if m.DeviceFor(topology.DieID(d)) != m.Devices()[0] {
			t.Errorf("die %d not served by the single device", d)
		}
	}
	// Unknown dies fall back to device 0.
	if m.DeviceFor(topology.InvalidDie) != m.Devices()[0] {
		t.Error("invalid die should fall back to device 0")
	}
}

func TestLayoutOddDieCount(t *testing.T) {
	// 3 sockets x 1 die: the die-pair layout must cover the odd last die.
	top := topology.MustNew(topology.Config{Sockets: 3, CoresPerSocket: 2})
	l, _ := LayoutByName("nvme-per-die-pair")
	m := l.Build(top)
	if m.NumDevices() != 2 {
		t.Fatalf("die-pair layout built %d devices for 3 dies, want 2", m.NumDevices())
	}
	if m.DeviceFor(2) == nil || m.DeviceFor(2) != m.Devices()[1] {
		t.Error("odd last die should have its own device")
	}
}

func TestBuildLayoutUnknown(t *testing.T) {
	top := topology.Small()
	if _, err := BuildLayout("floppy", top); err == nil {
		t.Fatal("unknown layout should error")
	}
	m, err := BuildLayout("nvme-per-socket", top)
	if err != nil || m.Layout() != "nvme-per-socket" {
		t.Fatalf("BuildLayout failed: %v", err)
	}
}

func TestMapReset(t *testing.T) {
	top := topology.Small()
	m, _ := BuildLayout("single-sata", top)
	m.DeviceFor(0).Flush(0, 0)
	m.DeviceFor(0).Flush(0, 0)
	if st := m.Stats(); st.Flushes != 2 || st.Queued != 1 {
		t.Fatalf("map stats = %+v, want 2 flushes 1 queued", st)
	}
	m.Reset()
	if st := m.Stats(); st.Flushes != 0 {
		t.Fatalf("map stats not reset: %+v", st)
	}
	var zero vclock.Nanos
	if got := m.DeviceFor(0).Flush(zero, 0); got != m.DeviceFor(0).Service(0) {
		t.Fatal("queue state not reset")
	}
}

// TestProfileLayoutsResolve checks every machine profile's canonical storage
// shape names a real layout and instantiates cleanly on the profile's machine.
func TestProfileLayoutsResolve(t *testing.T) {
	for _, p := range topology.Profiles() {
		if p.LogDevices == "" {
			t.Errorf("profile %s has no log-device layout", p.Name)
			continue
		}
		m, err := BuildLayout(p.LogDevices, p.Build())
		if err != nil {
			t.Errorf("profile %s: %v", p.Name, err)
			continue
		}
		top := p.Build()
		for d := 0; d < top.NumDies(); d++ {
			if m.DeviceFor(topology.DieID(d)) == nil {
				t.Errorf("profile %s: die %d has no device", p.Name, d)
			}
		}
	}
}
