// Package device models the heterogeneous log devices of a modern server:
// the flush targets the write-ahead logs commit to. A Device couples a cost
// specification (flush latency, per-byte bandwidth cost, queue depth) with a
// deterministic virtual-time queueing model: every flush occupies one of the
// device's channels for its service time, and a flush that arrives while all
// channels are busy waits behind the flushes queued ahead of it. The queueing
// is what makes log devices a granularity concern — an island wiring that
// funnels many instances' group commits through one flush path pays waits a
// wiring that spreads them across devices does not.
//
// Devices account cost in virtual nanoseconds like the rest of the system;
// they never sleep. The wal package binds one Device per island log, the
// engine derives the binding from a Layout (the machine's storage shape), and
// the granularity scorer prices candidate island levels against the same map.
package device

import (
	"fmt"
	"sync"

	"atrapos/internal/numa"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

// Spec is the immutable description of one log device.
type Spec struct {
	// Name identifies the device instance within its layout ("nvme-s0").
	Name string
	// Class names the device technology ("nvme", "nvme-shared", "sata").
	Class string
	// FlushLatency is the service latency of one flush: the virtual time the
	// device is busy making a group commit durable.
	FlushLatency numa.Cost
	// PerByteCost is the bandwidth cost per flushed byte, added to the service
	// time of a flush proportionally to the bytes it writes out.
	PerByteCost numa.Cost
	// QueueDepth is the number of flushes the device services concurrently
	// (NVMe namespaces absorb several in-flight flushes; a SATA-class device
	// serializes them). Values below one are treated as one.
	QueueDepth int
	// Socket and Die are where the device attaches: the socket owning the
	// controller and the die hosting it (the IO die on chiplet parts).
	Socket topology.SocketID
	Die    topology.DieID
}

// Device is one instantiated log device: a Spec plus the deterministic
// virtual-time queue state. It is safe for concurrent use.
//
// The queue is a drain-based backlog: every flush deposits its service time
// into the device's backlog, and the backlog drains as the issuing workers'
// virtual clocks advance past the latest arrival the device has seen —
// QueueDepth channels drain in parallel. A flush arriving at a backlogged
// device waits backlog/QueueDepth: the expected time until a channel frees
// up with the flushes ahead of it in service. Measuring contention against
// the backlog rather than against an absolute busy horizon keeps the model
// stable under per-core virtual clocks, which are mutually unordered: clock
// skew between workers never masquerades as device contention (an absolute
// horizon would charge every lagging worker the skew as a phantom wait, and
// 2PC's lock-holding multiplier would compound it run-away).
type Device struct {
	spec Spec

	mu sync.Mutex
	// backlog is the service work deposited by flushes and not yet drained.
	backlog vclock.Nanos
	// horizon is the latest arrival time seen; clock progress beyond it
	// drains the backlog.
	horizon vclock.Nanos

	flushes   int64
	queuedFl  int64
	queueWait vclock.Nanos
}

// New instantiates a device from its spec, normalizing degenerate values.
func New(spec Spec) *Device {
	if spec.QueueDepth < 1 {
		spec.QueueDepth = 1
	}
	if spec.FlushLatency < 0 {
		spec.FlushLatency = 0
	}
	if spec.PerByteCost < 0 {
		spec.PerByteCost = 0
	}
	return &Device{spec: spec}
}

// Spec returns the device's specification.
func (d *Device) Spec() Spec { return d.spec }

// Service returns the queue-free service time of one flush writing the given
// number of bytes.
func (d *Device) Service(bytes int) numa.Cost {
	if bytes < 0 {
		bytes = 0
	}
	return d.spec.FlushLatency + numa.Cost(bytes)*d.spec.PerByteCost
}

// Flush models one group-commit flush issued at virtual time now that writes
// bytes to the device. The flush first drains the backlog by the virtual time
// elapsed since the device's latest arrival (QueueDepth channels in
// parallel), then waits behind whatever backlog remains — the contention of
// the flushes queued ahead of it — and finally deposits its own service
// time. The returned latency is wait plus service. The model is
// deterministic in the sequence of calls and performs no heap allocations,
// so it can sit under the commit hot path.
func (d *Device) Flush(now vclock.Nanos, bytes int) numa.Cost {
	service := d.Service(bytes)
	depth := vclock.Nanos(d.spec.QueueDepth)
	d.mu.Lock()
	if now > d.horizon {
		drained := (now - d.horizon) * depth
		if drained >= d.backlog {
			d.backlog = 0
		} else {
			d.backlog -= drained
		}
		d.horizon = now
	}
	wait := d.backlog / depth
	if wait > 0 {
		d.queuedFl++
		d.queueWait += wait
	}
	d.backlog += vclock.Nanos(service)
	d.flushes++
	d.mu.Unlock()
	return numa.Cost(wait) + service
}

// Stats summarizes one device's activity since the last Reset.
type Stats struct {
	// Flushes is the number of flushes serviced.
	Flushes int64
	// Queued is how many of them found every channel busy and had to wait.
	Queued int64
	// QueueWait is the total virtual time flushes spent waiting for a channel.
	QueueWait vclock.Nanos
}

// Stats returns the device's counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{Flushes: d.flushes, Queued: d.queuedFl, QueueWait: d.queueWait}
}

// Reset clears the queue state and counters. Engines call it at the start of
// every run: runs restart virtual time at zero, so a backlog or arrival
// horizon left over from a previous run would be pure phantom contention.
func (d *Device) Reset() {
	d.mu.Lock()
	d.backlog, d.horizon = 0, 0
	d.flushes, d.queuedFl, d.queueWait = 0, 0, 0
	d.mu.Unlock()
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("%s(%s, flush %d, depth %d, socket %d)",
		d.spec.Name, d.spec.Class, d.spec.FlushLatency, d.spec.QueueDepth, d.spec.Socket)
}
