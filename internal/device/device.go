// Package device models the heterogeneous log devices of a modern server:
// the flush targets the write-ahead logs commit to. A Device couples a cost
// specification (flush latency, per-byte bandwidth cost, queue depth) with a
// deterministic virtual-time queueing model: every flush occupies one of the
// device's channels for its service time, and a flush that arrives while all
// channels are busy waits behind the flushes queued ahead of it. The queueing
// is what makes log devices a granularity concern — an island wiring that
// funnels many instances' group commits through one flush path pays waits a
// wiring that spreads them across devices does not.
//
// Devices account cost in virtual nanoseconds like the rest of the system;
// they never sleep. The wal package binds one Device per island log, the
// engine derives the binding from a Layout (the machine's storage shape), and
// the granularity scorer prices candidate island levels against the same map.
package device

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"atrapos/internal/numa"
	"atrapos/internal/obs"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

// Spec is the immutable description of one log device.
type Spec struct {
	// Name identifies the device instance within its layout ("nvme-s0").
	Name string
	// Class names the device technology ("nvme", "nvme-shared", "sata").
	Class string
	// FlushLatency is the service latency of one flush: the virtual time the
	// device is busy making a group commit durable.
	FlushLatency numa.Cost
	// PerByteCost is the bandwidth cost per flushed byte, added to the service
	// time of a flush proportionally to the bytes it writes out.
	PerByteCost numa.Cost
	// QueueDepth is the number of flushes the device services concurrently
	// (NVMe namespaces absorb several in-flight flushes; a SATA-class device
	// serializes them). Values below one are treated as one.
	QueueDepth int
	// Socket and Die are where the device attaches: the socket owning the
	// controller and the die hosting it (the IO die on chiplet parts).
	Socket topology.SocketID
	Die    topology.DieID
}

// Device is one instantiated log device: a Spec plus the deterministic
// virtual-time queue state. It is safe for concurrent use.
//
// The queue is a drain-based backlog: every flush deposits its service time
// into the device's backlog, and the backlog drains as the issuing workers'
// virtual clocks advance past the latest arrival the device has seen —
// QueueDepth channels drain in parallel. A flush arriving at a backlogged
// device waits backlog/QueueDepth: the expected time until a channel frees
// up with the flushes ahead of it in service. Measuring contention against
// the backlog rather than against an absolute busy horizon keeps the model
// stable under per-core virtual clocks, which are mutually unordered: clock
// skew between workers never masquerades as device contention (an absolute
// horizon would charge every lagging worker the skew as a phantom wait, and
// 2PC's lock-holding multiplier would compound it run-away).
type Device struct {
	spec Spec

	// failed and degrade are the fault-injection state. They are atomics —
	// not guarded by mu — because Service runs lock-free under the commit
	// hot path (group-commit ride-alongs price their share without taking
	// the queue lock). degrade holds the float64 bits of the latency
	// factor; zero means the device is healthy (factor 1.0), so fault-free
	// runs never touch float arithmetic and stay bit-identical.
	failed  atomic.Bool
	degrade atomic.Uint64

	mu sync.Mutex
	// backlog is the service work deposited by flushes and not yet drained.
	backlog vclock.Nanos
	// horizon is the latest arrival time seen; clock progress beyond it
	// drains the backlog.
	horizon vclock.Nanos

	flushes   int64
	queuedFl  int64
	queueWait vclock.Nanos

	// trace is the device span ring queue waits are recorded into; nil (the
	// default) records nothing. traceID stamps the spans with the device's
	// layout index.
	trace   *obs.Ring
	traceID int32
}

// New instantiates a device from its spec, normalizing degenerate values.
func New(spec Spec) *Device {
	if spec.QueueDepth < 1 {
		spec.QueueDepth = 1
	}
	if spec.FlushLatency < 0 {
		spec.FlushLatency = 0
	}
	if spec.PerByteCost < 0 {
		spec.PerByteCost = 0
	}
	return &Device{spec: spec}
}

// Spec returns the device's specification.
func (d *Device) Spec() Spec { return d.spec }

// Service returns the queue-free service time of one flush writing the given
// number of bytes, inflated by the degrade factor when the device is
// degraded.
func (d *Device) Service(bytes int) numa.Cost {
	if bytes < 0 {
		bytes = 0
	}
	s := d.spec.FlushLatency + numa.Cost(bytes)*d.spec.PerByteCost
	if bits := d.degrade.Load(); bits != 0 {
		s = numa.Cost(float64(s) * math.Float64frombits(bits))
	}
	return s
}

// Fail marks the device failed. A failed device keeps servicing flushes of
// logs still bound to it (the model has no data loss to represent — failure
// is a re-homing trigger), but the planner treats any wiring bound to it as
// stale and re-homes the affected island logs to surviving devices.
func (d *Device) Fail() { d.failed.Store(true) }

// Restore clears the failed mark.
func (d *Device) Restore() { d.failed.Store(false) }

// Failed reports whether the device is marked failed.
func (d *Device) Failed() bool { return d.failed.Load() }

// Degrade sets the device's latency factor: every subsequent service time is
// multiplied by it, modeling a device that still works but has slowed down
// (media wear, thermal throttling, a flaky link). Factors below one are
// clamped to one; Degrade(1) restores full speed.
func (d *Device) Degrade(factor float64) {
	if factor <= 1 {
		d.degrade.Store(0)
		return
	}
	d.degrade.Store(math.Float64bits(factor))
}

// DegradeFactor returns the current latency factor (1 when healthy).
func (d *Device) DegradeFactor() float64 {
	bits := d.degrade.Load()
	if bits == 0 {
		return 1
	}
	return math.Float64frombits(bits)
}

// Flush models one group-commit flush issued at virtual time now that writes
// bytes to the device. The flush first drains the backlog by the virtual time
// elapsed since the device's latest arrival (QueueDepth channels in
// parallel), then waits behind whatever backlog remains — the contention of
// the flushes queued ahead of it — and finally deposits its own service
// time. The returned latency is wait plus service. The model is
// deterministic in the sequence of calls and performs no heap allocations,
// so it can sit under the commit hot path.
func (d *Device) Flush(now vclock.Nanos, bytes int) numa.Cost {
	service := d.Service(bytes)
	depth := vclock.Nanos(d.spec.QueueDepth)
	d.mu.Lock()
	if now > d.horizon {
		drained := (now - d.horizon) * depth
		if drained >= d.backlog {
			d.backlog = 0
		} else {
			d.backlog -= drained
		}
		d.horizon = now
	}
	wait := d.backlog / depth
	if wait > 0 {
		d.queuedFl++
		d.queueWait += wait
		d.trace.Record(obs.Span{Start: now, Dur: wait, Kind: obs.KindDeviceWait,
			Site: d.traceID, Arg: int64(bytes)})
	}
	d.backlog += vclock.Nanos(service)
	d.flushes++
	d.mu.Unlock()
	return numa.Cost(wait) + service
}

// SetTrace attaches (or, with a nil ring, detaches) the span ring the device
// records queue waits into, stamped with the device's layout index id.
func (d *Device) SetTrace(r *obs.Ring, id int32) {
	d.mu.Lock()
	d.trace = r
	d.traceID = id
	d.mu.Unlock()
}

// BacklogAt returns the service backlog that would remain at virtual time
// now — the drain formula of Flush applied read-only. The metrics sampler
// reads it at planner boundaries.
func (d *Device) BacklogAt(now vclock.Nanos) vclock.Nanos {
	d.mu.Lock()
	defer d.mu.Unlock()
	backlog := d.backlog
	if now > d.horizon {
		drained := (now - d.horizon) * vclock.Nanos(d.spec.QueueDepth)
		if drained >= backlog {
			return 0
		}
		backlog -= drained
	}
	return backlog
}

// Stats summarizes one device's activity since the last Reset.
type Stats struct {
	// Flushes is the number of flushes serviced.
	Flushes int64
	// Queued is how many of them found every channel busy and had to wait.
	Queued int64
	// QueueWait is the total virtual time flushes spent waiting for a channel.
	QueueWait vclock.Nanos
}

// Stats returns the device's counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{Flushes: d.flushes, Queued: d.queuedFl, QueueWait: d.queueWait}
}

// Reset clears the queue state and counters. Engines call it at the start of
// every run: runs restart virtual time at zero, so a backlog or arrival
// horizon left over from a previous run would be pure phantom contention.
func (d *Device) Reset() {
	d.mu.Lock()
	d.backlog, d.horizon = 0, 0
	d.flushes, d.queuedFl, d.queueWait = 0, 0, 0
	d.mu.Unlock()
}

// String implements fmt.Stringer.
func (d *Device) String() string {
	return fmt.Sprintf("%s(%s, flush %d, depth %d, socket %d)",
		d.spec.Name, d.spec.Class, d.spec.FlushLatency, d.spec.QueueDepth, d.spec.Socket)
}
