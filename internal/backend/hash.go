package backend

import (
	"fmt"
	"sort"

	"atrapos/internal/numa"
	"atrapos/internal/schema"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/wal"
)

// HashBackend is the executed storage engine: a Bitcask-style hash engine
// with one shard per hardware island. Each shard holds a per-table
// open-addressing index owned by its island's executor (single-owner, so the
// probe path needs no mutex and no RWMutex), and each island has an
// append-only value log — a wal.CentralLog, so the write-combining coalescer
// batches committed writes into net-delta flush epochs exactly as the priced
// engine's island logs do. The in-memory indexes are the crash-volatile half:
// CrashAndRecover drops them and rebuilds by replaying the island value logs.
//
// The shard count is rounded up to a power of two so the self-routing hash
// (ShardOf) is a mask, not a division; shards beyond the island count are
// owned by island (shard % islands) and stay empty under the engine's
// site-indexed routing.
type HashBackend struct {
	tables  []string
	islands int
	homes   []topology.SocketID
	domain  *numa.Domain
	logCfg  wal.Config

	shards []hashShard
	logs   []*wal.CentralLog
	mask   uint64

	execs []*Executor

	// loadTxn numbers bulk-load and compaction transactions from the top of
	// the id space so they can never collide with the engine's per-run txn ids.
	loadTxn uint64
}

// hashShard is one shard: a per-table open-addressing index.
type hashShard struct {
	idx []openIndex
}

// HashConfig sizes a HashBackend.
type HashConfig struct {
	// Islands is the number of islands (= executors = value logs); the shard
	// count is the next power of two.
	Islands int
	// Tables are the table names, indexed by table id (TableSpecs order).
	Tables []string
	// Homes are the per-island log home sockets (island first-core sockets).
	Homes []topology.SocketID
	// Log tunes the island value logs. Keep must be 0 for crash drills (a
	// bounded ring cannot replay the full history); CoalesceRecords batches
	// physical flushes through the wal coalescer.
	Log wal.Config
	// Domain prices the value-log tail reservations (discarded by the
	// executed path, which measures wall time instead, but the log needs one).
	Domain *numa.Domain
}

// NewHash builds an empty hash backend.
func NewHash(cfg HashConfig) (*HashBackend, error) {
	if cfg.Islands < 1 {
		return nil, fmt.Errorf("backend: need at least one island, got %d", cfg.Islands)
	}
	if len(cfg.Tables) == 0 {
		return nil, fmt.Errorf("backend: need at least one table")
	}
	if cfg.Domain == nil {
		return nil, fmt.Errorf("backend: need a NUMA domain for the value logs")
	}
	b := &HashBackend{
		tables:  append([]string(nil), cfg.Tables...),
		islands: cfg.Islands,
		homes:   append([]topology.SocketID(nil), cfg.Homes...),
		domain:  cfg.Domain,
		logCfg:  cfg.Log,
		loadTxn: ^uint64(0) - 1<<20,
	}
	b.build()
	return b, nil
}

// build (re)creates the shard and log arrays empty.
func (b *HashBackend) build() {
	n := nextPow2(b.islands)
	b.mask = uint64(n - 1)
	b.shards = make([]hashShard, n)
	for s := range b.shards {
		b.shards[s].idx = make([]openIndex, len(b.tables))
	}
	b.logs = make([]*wal.CentralLog, b.islands)
	for i := range b.logs {
		b.logs[i] = wal.NewCentralLog(b.domain, b.home(i), b.logCfg)
	}
}

// Reset drops all data and durability state, returning the backend to its
// just-built state. Executors must be stopped.
func (b *HashBackend) Reset() { b.build() }

func (b *HashBackend) home(island int) topology.SocketID {
	if island < 0 || island >= len(b.homes) {
		return 0
	}
	return b.homes[island]
}

// Shards implements Backend.
func (b *HashBackend) Shards() int { return len(b.shards) }

// Islands returns the island (executor / value-log) count.
func (b *HashBackend) Islands() int { return b.islands }

// Tables returns the registered table names in table-id order.
func (b *HashBackend) Tables() []string { return b.tables }

// Owner returns the island owning a shard.
func (b *HashBackend) Owner(shard int) int { return shard % b.islands }

// ShardOf self-routes a key: its hash masked to the power-of-two shard count.
// The engine's site routing supersedes this (placement decides ownership);
// self-routing serves callers without a placement, like the backend tests.
func (b *HashBackend) ShardOf(table int, key schema.Key) int {
	return int(mix64(uint64(key)+uint64(table)<<56) & b.mask)
}

// Log returns island i's value log.
func (b *HashBackend) Log(island int) *wal.CentralLog {
	if island < 0 || island >= len(b.logs) {
		return b.logs[0]
	}
	return b.logs[island]
}

var _ Backend = (*HashBackend)(nil)

// Get implements Backend: one open-addressing probe, no locks — the shard is
// owned by exactly one executor.
func (b *HashBackend) Get(shard, table int, key schema.Key) (uint64, bool) {
	return b.shards[shard].idx[table].get(key)
}

// Put implements Backend: the index takes the new value and the write is
// appended to the owning island's value log on behalf of txn (staged by the
// coalescer until the transaction's commit record arrives).
func (b *HashBackend) Put(shard, table int, key schema.Key, txn, val uint64) {
	inserted := b.shards[shard].idx[table].put(key, val)
	typ := wal.Update
	if inserted {
		typ = wal.Insert
	}
	island := b.Owner(shard)
	b.logs[island].Append(b.home(island), wal.Record{
		Txn: txn, Type: typ, Table: b.tables[table], Key: key, Size: 32,
	})
}

// Delete implements Backend: the key is tombstoned in the index and a delete
// record is appended to the island value log.
func (b *HashBackend) Delete(shard, table int, key schema.Key, txn uint64) bool {
	if !b.shards[shard].idx[table].del(key) {
		return false
	}
	island := b.Owner(shard)
	b.logs[island].Append(b.home(island), wal.Record{
		Txn: txn, Type: wal.Delete, Table: b.tables[table], Key: key, Size: 24,
	})
	return true
}

// Scan implements Backend.
func (b *HashBackend) Scan(shard, table int, fn func(schema.Key, uint64) bool) int {
	return b.shards[shard].idx[table].scan(fn)
}

// Commit appends txn's commit record to island's value log (folding its
// staged writes into the coalescer's net-delta buffer) and runs group commit.
// now is the committer's wall-clock offset, which drives the coalescer's
// max-age deadline.
func (b *HashBackend) Commit(island int, txn uint64, now vclock.Nanos) {
	l := b.Log(island)
	lsn, _ := l.Append(b.home(island), wal.Record{Txn: txn, Type: wal.Commit, Size: 16})
	l.Flush(b.home(island), lsn, now)
}

// Load bulk-inserts a key directly into its shard's index and value log under
// the backend's load transaction; FinishLoad commits the load on every island
// so recovery treats loaded rows as winners.
func (b *HashBackend) Load(shard, table int, key schema.Key, val uint64) {
	b.Put(shard, table, key, b.loadTxn, val)
}

// FinishLoad commits the bulk load on every island.
func (b *HashBackend) FinishLoad(now vclock.Nanos) {
	for i := range b.logs {
		b.Commit(i, b.loadTxn, now)
	}
	b.loadTxn++
}

// Drain forces every island value log's coalescing accumulator out and makes
// everything appended so far durable; see wal.CentralLog.Drain.
func (b *HashBackend) Drain(now vclock.Nanos) {
	for _, l := range b.logs {
		l.Drain(now)
	}
}

// Stats sums the island value logs' activity counters.
func (b *HashBackend) Stats() wal.Stats {
	var s wal.Stats
	for _, l := range b.logs {
		s = s.Add(l.Stats())
	}
	return s
}

// tableID resolves a table name to its registration index, or -1.
func (b *HashBackend) tableID(name string) int {
	for i, t := range b.tables {
		if t == name {
			return i
		}
	}
	return -1
}

// CrashAndRecover simulates an instance crash and restart: every in-memory
// index is dropped (the crash-volatile state) and rebuilt by replaying the
// island value logs, Bitcask's startup scan. The logs are drained first — the
// drill models a crash after the last commit became durable, mirroring the
// priced engine's crash drill, which drains before snapshotting the rings.
// Replay applies only winner transactions (those with a commit record on the
// log, which with coalescing is also exactly what survives in the ring as net
// deltas); records of transactions without an outcome are ignored.
func (b *HashBackend) CrashAndRecover(now vclock.Nanos) {
	b.Drain(now)
	// Drop the crash-volatile state.
	for s := range b.shards {
		b.shards[s].idx = make([]openIndex, len(b.tables))
	}
	for island, l := range b.logs {
		recs := l.Records()
		winners := make(map[uint64]bool)
		for _, r := range recs {
			if r.Type == wal.Commit || r.Type == wal.EndOfDistributed {
				winners[r.Txn] = true
			}
		}
		for _, r := range recs {
			if !winners[r.Txn] {
				continue
			}
			ti := b.tableID(r.Table)
			if ti < 0 {
				continue
			}
			shard := b.shardOnIsland(island, ti, r.Key)
			switch r.Type {
			case wal.Insert, wal.Update:
				b.shards[shard].idx[ti].put(r.Key, uint64(r.LSN))
			case wal.Delete:
				b.shards[shard].idx[ti].del(r.Key)
			}
		}
	}
}

// shardOnIsland finds the shard owned by island that self-routing would place
// (table, key) on; with shards == islands (the common case) that is island
// itself. Recovery needs it because the log knows its island, not the shard.
func (b *HashBackend) shardOnIsland(island, table int, key schema.Key) int {
	if len(b.shards) == b.islands {
		return island
	}
	// Probe the island's shards in order; replay is not hot, determinism is
	// what matters: the same (island, table, key) always lands on the same
	// shard, and TableKeySets aggregates across shards anyway.
	for s := island; s < len(b.shards); s += b.islands {
		return s
	}
	return island
}

// TableKeySets returns the live keys of every table, sorted, aggregated
// across shards — the equivalence check of the crash drill.
func (b *HashBackend) TableKeySets() map[string][]schema.Key {
	out := make(map[string][]schema.Key, len(b.tables))
	for ti, name := range b.tables {
		var keys []schema.Key
		for s := range b.shards {
			b.shards[s].idx[ti].scan(func(k schema.Key, _ uint64) bool {
				keys = append(keys, k)
				return true
			})
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		out[name] = keys
	}
	return out
}

// Reshard rebuilds the backend for a new island layout — the storage half of
// an online granularity change. Live entries are routed to their new shards
// by route (the new placement's site mapping) and replayed into the new
// island value logs under a compaction transaction, Bitcask's merge: the new
// logs start from a compacted image of the live keyset rather than the full
// history, and recovery after a re-shard replays exactly that image.
// Executors must be stopped (the engine re-shards from the planner, never
// under a running executed workload).
func (b *HashBackend) Reshard(islands int, homes []topology.SocketID, route func(table int, key schema.Key) int) {
	old := b.shards
	oldTables := len(b.tables)
	b.islands = islands
	b.homes = append(b.homes[:0], homes...)
	b.execs = nil
	b.build()
	for s := range old {
		for ti := 0; ti < oldTables; ti++ {
			old[s].idx[ti].scan(func(k schema.Key, v uint64) bool {
				target := route(ti, k)
				if target < 0 || target >= len(b.shards) {
					target = b.ShardOf(ti, k)
				}
				b.Put(target, ti, k, b.loadTxn, v)
				return true
			})
		}
	}
	b.FinishLoad(0)
}
