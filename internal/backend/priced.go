package backend

import (
	"atrapos/internal/numa"
	"atrapos/internal/schema"
	"atrapos/internal/storage"
	"atrapos/internal/topology"
)

// PricedBackend adapts the existing priced storage path — B-tree tables whose
// operations charge modeled virtual costs — to the shard-handle interface, so
// the two modes are the same shape to callers: shard i's operations run from
// island i's home core and their virtual cost is handed to the configured
// sink (the engine charges it to that core's clock). Values are synthesized
// from row presence; the priced engine's own hot path keeps using the tables
// directly, this adapter exists so sweeps and tests can drive both backends
// through one interface.
type PricedBackend struct {
	tables []*storage.Table
	// homes[i] is the core shard i's operations are priced from.
	homes []topology.CoreID
	// charge receives the virtual cost of every operation, keyed by shard.
	// Nil discards costs.
	charge func(shard int, c numa.Cost)
}

// NewPriced wraps the given tables (in registration order) as a priced
// backend with one shard per entry of homes.
func NewPriced(tables []*storage.Table, homes []topology.CoreID, charge func(shard int, c numa.Cost)) *PricedBackend {
	return &PricedBackend{tables: tables, homes: append([]topology.CoreID(nil), homes...), charge: charge}
}

var _ Backend = (*PricedBackend)(nil)

// Shards implements Backend.
func (p *PricedBackend) Shards() int { return len(p.homes) }

func (p *PricedBackend) bill(shard int, c numa.Cost) {
	if p.charge != nil {
		p.charge(shard, c)
	}
}

func (p *PricedBackend) home(shard int) topology.CoreID {
	if shard < 0 || shard >= len(p.homes) {
		return 0
	}
	return p.homes[shard]
}

// Get implements Backend: a priced B-tree read.
func (p *PricedBackend) Get(shard, table int, key schema.Key) (uint64, bool) {
	row, cost, err := p.tables[table].Read(p.home(shard), key)
	p.bill(shard, cost)
	if err != nil {
		return 0, false
	}
	if len(row) > 0 {
		if v, ok := row[0].(int64); ok {
			return uint64(v), true
		}
	}
	return 0, true
}

// Put implements Backend: a priced update, falling back to an insert when the
// key is absent (the hash engine's upsert semantics).
func (p *PricedBackend) Put(shard, table int, key schema.Key, txn, val uint64) {
	tbl := p.tables[table]
	from := p.home(shard)
	cost, err := tbl.Update(from, key, func(r schema.Row) schema.Row {
		if len(r) > 0 {
			r[0] = int64(val)
		}
		return r
	})
	p.bill(shard, cost)
	if err == storage.ErrNotFound {
		cost, _ = tbl.Insert(from, key, schema.Row{int64(val)})
		p.bill(shard, cost)
	}
}

// Delete implements Backend.
func (p *PricedBackend) Delete(shard, table int, key schema.Key, txn uint64) bool {
	cost, err := p.tables[table].Delete(p.home(shard), key)
	p.bill(shard, cost)
	return err == nil
}

// Scan implements Backend; it visits the whole key space of the table (the
// priced tables are not sharded physically, so every shard sees all keys).
func (p *PricedBackend) Scan(shard, table int, fn func(schema.Key, uint64) bool) int {
	n := 0
	cost := p.tables[table].Scan(p.home(shard), 0, ^schema.Key(0), func(k schema.Key, r schema.Row) bool {
		n++
		var v uint64
		if len(r) > 0 {
			if x, ok := r[0].(int64); ok {
				v = uint64(x)
			}
		}
		return fn(k, v)
	})
	p.bill(shard, cost)
	return n
}
