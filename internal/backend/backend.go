// Package backend defines the pluggable storage engine behind the engine's
// executors. The reproduction's default storage path is *priced*: operations
// run against real B-trees but their cost is virtual, charged to per-core
// clocks by the NUMA cost model. This package adds the *executed* alternative:
// a real sharded hash engine (HashBackend) whose operations cost whatever the
// host actually spends, measured in wall nanoseconds — the ground truth the
// cost model's island-level rankings are calibrated against.
//
// Both engines expose the same shard-handle interface: one shard per hardware
// island, addressed by island index, so the engine's site routing (placement →
// core → island) maps onto either backend unchanged.
package backend

import (
	"atrapos/internal/schema"
)

// Kind names a storage backend in engine configuration.
type Kind string

const (
	// Priced is the default virtual-cost path: storage operations run on the
	// engine's B-trees and charge modeled costs to virtual clocks.
	Priced Kind = ""
	// Hash selects the executed Bitcask-style sharded hash engine: real
	// operations, real wall time, one shard per island.
	Hash Kind = "hash"
)

// Backend is a sharded key-value storage engine. Shards are addressed by
// index; tables by their registration index (the engine registers the
// workload's tables in TableSpecs order, so table i means the same relation in
// every backend). Ops carry the acting transaction id so the durability layer
// can stage writes per transaction (group commit, coalescing).
//
// A shard is single-owner: the caller must ensure that at most one goroutine
// operates on a given shard at a time (the executed engine pins one executor
// per island and ships cross-island operations to the owner). The interface
// itself adds no locking.
type Backend interface {
	// Shards returns the number of shard handles.
	Shards() int
	// Get returns the value stored under key in the shard's table, if any.
	Get(shard, table int, key schema.Key) (uint64, bool)
	// Put stores val under key on behalf of txn, inserting or overwriting.
	Put(shard, table int, key schema.Key, txn, val uint64)
	// Delete removes key on behalf of txn and reports whether it was present.
	Delete(shard, table int, key schema.Key, txn uint64) bool
	// Scan visits the shard's live keys of one table in unspecified order
	// until fn returns false; it returns the number of keys visited.
	Scan(shard, table int, fn func(schema.Key, uint64) bool) int
}

// nextPow2 returns the smallest power of two >= n (and >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// mix64 is the splitmix64 finalizer, the hash both the shard router and the
// open-addressing indexes probe with.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
