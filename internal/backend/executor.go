package backend

import (
	"runtime"
	"time"

	"atrapos/internal/obs"
	"atrapos/internal/schema"
	"atrapos/internal/vclock"
)

// Request op codes for the inter-executor ship protocol.
const (
	opGet uint8 = iota
	opPut
	opDelete
	opCommit
)

// Request is one shipped storage operation. An executor owns exactly one
// reusable Request (its out field), so shipping allocates nothing in steady
// state: the sender fills its out, hands the pointer to the owner's inbox,
// and blocks on its own reply channel until the owner writes the result back
// into the same struct and signals it.
type Request struct {
	op    uint8
	table int32
	shard int32
	txn   uint64
	key   schema.Key
	val   uint64
	ok    bool
	from  *Executor
}

// ExecStats are one executor's per-run wall-time counters, in nanoseconds.
// OpNs is time inside local index/log operations; ShipNs is time blocked on
// remote owners (minus time spent serving peers while waiting); ServeNs is
// time executing peers' shipped operations.
type ExecStats struct {
	Ops     int64
	Ships   int64
	Serves  int64
	OpNs    int64
	ShipNs  int64
	ServeNs int64
	LogNs   int64
}

// Executor is the single owner of one island's shards: all index mutations on
// those shards happen on its goroutine, which the engine pins to an OS thread
// (runtime.LockOSThread) so the island affinity the wiring prescribes is real,
// not advisory. Cross-island operations are shipped to the owner over a
// bounded channel; while an executor waits for its own reply it keeps serving
// its inbox, so a cycle of mutual ships cannot deadlock (each executor has at
// most one outstanding ship).
type Executor struct {
	id int
	b  *HashBackend

	in    chan *Request
	reply chan *Request
	out   Request

	Stats ExecStats

	// trace is the span ring shipped-operation service is recorded into.
	// Backend spans carry *wall* nanoseconds (the executed path measures real
	// time), so they are excluded from virtual-time determinism oracles; nil
	// records nothing.
	trace *obs.Ring
}

// SetTrace attaches (or, with a nil ring, detaches) the executor's span ring.
// Call it before the executor starts serving; serve reads it unguarded.
func (e *Executor) SetTrace(r *obs.Ring) { e.trace = r }

// NewExecutors builds one executor per island and wires their inboxes. The
// inbox capacity is the executor count: every peer can have its single
// outstanding request parked there without blocking the owner's send.
func NewExecutors(b *HashBackend) []*Executor {
	n := b.Islands()
	execs := make([]*Executor, n)
	for i := range execs {
		execs[i] = &Executor{
			id:    i,
			b:     b,
			in:    make(chan *Request, n),
			reply: make(chan *Request, 1),
		}
	}
	b.execs = execs
	return execs
}

// Pin binds the executor's goroutine to its current OS thread for the
// duration of fn — the engine calls it first thing in the worker loop.
func (e *Executor) Pin(fn func()) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	fn()
}

// ID returns the executor's island index.
func (e *Executor) ID() int { return e.id }

// serve executes a shipped request against this executor's shards and hands
// it back to the sender, accounting the wall time under ServeNs.
func (e *Executor) serve(r *Request) {
	t0 := time.Now()
	op := r.op
	e.serveOp(r)
	d := time.Since(t0).Nanoseconds()
	e.Stats.ServeNs += d
	e.trace.Record(obs.Span{Start: vclock.Nanos(t0.UnixNano()), Dur: vclock.Nanos(d),
		Kind: obs.KindBackendOp, Site: int32(e.id), Arg: int64(op)})
}

func (e *Executor) serveOp(r *Request) {
	switch r.op {
	case opGet:
		r.val, r.ok = e.b.Get(int(r.shard), int(r.table), r.key)
	case opPut:
		e.b.Put(int(r.shard), int(r.table), r.key, r.txn, r.val)
		r.ok = true
	case opDelete:
		r.ok = e.b.Delete(int(r.shard), int(r.table), r.key, r.txn)
	case opCommit:
		// val carries the committer's wall offset so the owner's group-commit
		// deadline advances with real time.
		e.b.Commit(e.id, r.txn, vclock.Nanos(r.val))
		r.ok = true
	}
	r.from.reply <- r
}

// Serve blocks on the inbox, executing peers' shipped operations, until stop
// closes. Executors that finish their own work loop early enter this phase so
// slower peers can still ship to them; the caller closes stop only after every
// work loop has returned (at which point no ship can be in flight, since each
// ship completes synchronously before its sender proceeds).
func (e *Executor) Serve(stop <-chan struct{}) {
	for {
		select {
		case r := <-e.in:
			e.Stats.Serves++
			e.serve(r)
		case <-stop:
			e.Poll()
			return
		}
	}
}

// Poll drains the inbox without blocking; the engine calls it between
// transactions so remote requests never wait for a full local transaction.
func (e *Executor) Poll() {
	for {
		select {
		case r := <-e.in:
			e.Stats.Serves++
			e.serve(r)
		default:
			return
		}
	}
}

// ship sends the executor's out request to the owner and waits for the reply,
// serving its own inbox in the meantime. Returns the same request, completed.
// The wait (minus any time spent serving peers, which serve accounts
// separately) lands in ShipNs — the executed analogue of the priced model's
// message round-trip.
func (e *Executor) ship(owner *Executor) *Request {
	e.Stats.Ships++
	e.out.from = e
	t0 := time.Now()
	served := e.Stats.ServeNs
	owner.in <- &e.out
	for {
		select {
		case r := <-e.reply:
			e.Stats.ShipNs += time.Since(t0).Nanoseconds() - (e.Stats.ServeNs - served)
			return r
		case r := <-e.in:
			e.Stats.Serves++
			e.serve(r)
		}
	}
}

// Get reads (table, key) from shard, locally when this executor owns it,
// otherwise shipped to the owner.
func (e *Executor) Get(shard, table int, key schema.Key) (uint64, bool) {
	owner := e.b.Owner(shard)
	if owner == e.id {
		return e.b.Get(shard, table, key)
	}
	e.out = Request{op: opGet, table: int32(table), shard: int32(shard), key: key}
	r := e.ship(e.b.execs[owner])
	return r.val, r.ok
}

// Put writes (table, key) = val on behalf of txn.
func (e *Executor) Put(shard, table int, key schema.Key, txn, val uint64) {
	owner := e.b.Owner(shard)
	if owner == e.id {
		e.b.Put(shard, table, key, txn, val)
		return
	}
	e.out = Request{op: opPut, table: int32(table), shard: int32(shard), txn: txn, key: key, val: val}
	e.ship(e.b.execs[owner])
}

// Delete removes (table, key) on behalf of txn.
func (e *Executor) Delete(shard, table int, key schema.Key, txn uint64) bool {
	owner := e.b.Owner(shard)
	if owner == e.id {
		return e.b.Delete(shard, table, key, txn)
	}
	e.out = Request{op: opDelete, table: int32(table), shard: int32(shard), txn: txn, key: key}
	r := e.ship(e.b.execs[owner])
	return r.ok
}

// CommitRemote ships txn's commit record to a participant island's log —
// the decision round-trip of a multi-island transaction. now is the
// committer's wall offset in nanoseconds.
func (e *Executor) CommitRemote(island int, txn uint64, nowNs int64) {
	if island == e.id {
		e.b.Commit(e.id, txn, vclock.Nanos(nowNs))
		return
	}
	e.out = Request{op: opCommit, txn: txn, val: uint64(nowNs)}
	e.ship(e.b.execs[island])
}

// CommitLocal appends txn's commit record to this executor's own island log.
func (e *Executor) CommitLocal(txn uint64, nowNs int64) {
	e.b.Commit(e.id, txn, vclock.Nanos(nowNs))
}
