package backend

import (
	"math/rand"
	"testing"

	"atrapos/internal/numa"
	"atrapos/internal/schema"
	"atrapos/internal/storage"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/wal"
)

func testDomain(t *testing.T) *numa.Domain {
	t.Helper()
	top, err := topology.BuildProfile("2s-fc")
	if err != nil {
		t.Fatalf("BuildProfile: %v", err)
	}
	d, err := numa.NewDomain(top, numa.DefaultCostModel())
	if err != nil {
		t.Fatalf("NewDomain: %v", err)
	}
	return d
}

func testHash(t *testing.T, islands int) *HashBackend {
	t.Helper()
	homes := make([]topology.SocketID, islands)
	b, err := NewHash(HashConfig{
		Islands: islands,
		Tables:  []string{"alpha", "beta"},
		Homes:   homes,
		Log:     wal.Config{PerByteCost: 1, FlushCost: 12000, GroupSize: 4, Keep: 0, CoalesceRecords: 8},
		Domain:  testDomain(t),
	})
	if err != nil {
		t.Fatalf("NewHash: %v", err)
	}
	return b
}

func TestHashBackendPutGetDelete(t *testing.T) {
	b := testHash(t, 3)
	if got := b.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want next pow2 of 3 = 4", got)
	}
	for i := 0; i < 1000; i++ {
		k := schema.Key(i * 7)
		b.Put(b.ShardOf(0, k), 0, k, 1, uint64(i))
	}
	for i := 0; i < 1000; i++ {
		k := schema.Key(i * 7)
		v, ok := b.Get(b.ShardOf(0, k), 0, k)
		if !ok || v != uint64(i) {
			t.Fatalf("Get(%d) = %d, %v; want %d, true", k, v, ok, i)
		}
	}
	// Other table stays empty.
	if _, ok := b.Get(b.ShardOf(1, 7), 1, 7); ok {
		t.Fatal("key leaked across tables")
	}
	// Overwrite then delete.
	k := schema.Key(7)
	b.Put(b.ShardOf(0, k), 0, k, 2, 999)
	if v, _ := b.Get(b.ShardOf(0, k), 0, k); v != 999 {
		t.Fatalf("overwrite lost: got %d", v)
	}
	if !b.Delete(b.ShardOf(0, k), 0, k, 3) {
		t.Fatal("Delete of present key returned false")
	}
	if _, ok := b.Get(b.ShardOf(0, k), 0, k); ok {
		t.Fatal("deleted key still readable")
	}
	if b.Delete(b.ShardOf(0, k), 0, k, 4) {
		t.Fatal("Delete of absent key returned true")
	}
}

// TestOpenIndexChurn stresses growth, tombstone reuse, and probe-chain
// integrity against a shadow map.
func TestOpenIndexChurn(t *testing.T) {
	var x openIndex
	shadow := make(map[schema.Key]uint64)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		k := schema.Key(rng.Intn(500))
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Uint64()
			wantInsert := true
			if _, ok := shadow[k]; ok {
				wantInsert = false
			}
			if got := x.put(k, v); got != wantInsert {
				t.Fatalf("put(%d) insert=%v, want %v", k, got, wantInsert)
			}
			shadow[k] = v
		case 2:
			_, present := shadow[k]
			if got := x.del(k); got != present {
				t.Fatalf("del(%d) = %v, want %v", k, got, present)
			}
			delete(shadow, k)
		}
	}
	if x.len() != len(shadow) {
		t.Fatalf("live count %d, shadow %d", x.len(), len(shadow))
	}
	for k, v := range shadow {
		got, ok := x.get(k)
		if !ok || got != v {
			t.Fatalf("get(%d) = %d, %v; want %d, true", k, got, ok, v)
		}
	}
	seen := 0
	x.scan(func(k schema.Key, v uint64) bool {
		if shadow[k] != v {
			t.Fatalf("scan saw (%d, %d), shadow has %d", k, v, shadow[k])
		}
		seen++
		return true
	})
	if seen != len(shadow) {
		t.Fatalf("scan visited %d, want %d", seen, len(shadow))
	}
}

func TestHashBackendCrashRecover(t *testing.T) {
	b := testHash(t, 2)
	shadow := make(map[int]map[schema.Key]bool)
	for ti := 0; ti < 2; ti++ {
		shadow[ti] = make(map[schema.Key]bool)
	}
	// Bulk load, committed via FinishLoad.
	for i := 0; i < 64; i++ {
		k := schema.Key(i)
		b.Load(b.ShardOf(0, k), 0, k, uint64(i))
		shadow[0][k] = true
	}
	b.FinishLoad(0)
	// Committed transactions: inserts, overwrites, deletes across both tables.
	txn := uint64(1)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		ti := rng.Intn(2)
		k := schema.Key(rng.Intn(128))
		shard := b.ShardOf(ti, k)
		island := b.Owner(shard)
		if rng.Intn(4) == 0 {
			if b.Delete(shard, ti, k, txn) {
				delete(shadow[ti], k)
			}
		} else {
			b.Put(shard, ti, k, txn, uint64(i))
			shadow[ti][k] = true
		}
		b.Commit(island, txn, vnanos(i))
		txn++
	}
	// A loser: writes with no commit record must not survive recovery.
	loserKey := schema.Key(5000)
	b.Put(b.ShardOf(0, loserKey), 0, loserKey, txn, 1)

	b.CrashAndRecover(vnanos(1000))

	sets := b.TableKeySets()
	for ti, name := range []string{"alpha", "beta"} {
		got := sets[name]
		if len(got) != len(shadow[ti]) {
			t.Fatalf("table %s: recovered %d keys, want %d", name, len(got), len(shadow[ti]))
		}
		for _, k := range got {
			if !shadow[ti][k] {
				t.Fatalf("table %s: recovered unexpected key %d", name, k)
			}
		}
	}
	if _, ok := b.Get(b.ShardOf(0, loserKey), 0, loserKey); ok {
		t.Fatal("uncommitted write survived recovery")
	}
}

func TestHashBackendReshard(t *testing.T) {
	b := testHash(t, 4)
	want := make(map[schema.Key]uint64)
	for i := 0; i < 500; i++ {
		k := schema.Key(i * 3)
		b.Put(b.ShardOf(0, k), 0, k, 1, uint64(i))
		want[k] = uint64(i)
	}
	before := b.TableKeySets()["alpha"]

	// Coarsen 4 islands -> 2, routing by parity.
	b.Reshard(2, []topology.SocketID{0, 1}, func(table int, key schema.Key) int {
		return int(key) % 2
	})
	if b.Islands() != 2 || b.Shards() != 2 {
		t.Fatalf("after reshard: islands=%d shards=%d, want 2/2", b.Islands(), b.Shards())
	}
	after := b.TableKeySets()["alpha"]
	if len(after) != len(before) {
		t.Fatalf("reshard lost keys: %d -> %d", len(before), len(after))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("keyset changed at %d: %d vs %d", i, after[i], before[i])
		}
	}
	for k, v := range want {
		shard := int(k) % 2
		got, ok := b.Get(shard, 0, k)
		if !ok || got != v {
			t.Fatalf("after reshard Get(%d) = %d, %v; want %d on shard %d", k, got, ok, v, shard)
		}
	}
	// The compacted value logs must survive a crash drill too.
	b.CrashAndRecover(0)
	if got := b.TableKeySets()["alpha"]; len(got) != len(before) {
		t.Fatalf("post-reshard recovery lost keys: %d, want %d", len(got), len(before))
	}
}

func TestExecutorShipping(t *testing.T) {
	b := testHash(t, 4)
	execs := NewExecutors(b)
	done := make(chan map[schema.Key]uint64, len(execs))
	stop := make(chan struct{})
	for _, ex := range execs {
		go func(ex *Executor) {
			ex.Pin(func() {
				got := make(map[schema.Key]uint64)
				// Each executor writes 100 keys spread over ALL shards (so
				// most ops are shipped), then reads them back.
				base := schema.Key(ex.ID() * 1000)
				txn := uint64(ex.ID() + 1)
				for i := 0; i < 100; i++ {
					k := base + schema.Key(i)
					shard := int(k) % b.Shards()
					ex.Put(shard, 0, k, txn, uint64(k)*2)
					ex.Poll()
				}
				ex.CommitLocal(txn, 0)
				for i := 0; i < 100; i++ {
					k := base + schema.Key(i)
					shard := int(k) % b.Shards()
					if v, ok := ex.Get(shard, 0, k); ok {
						got[k] = v
					}
					ex.Poll()
				}
				done <- got
				// Keep serving slower peers until everyone is finished.
				ex.Serve(stop)
			})
		}(ex)
	}
	merged := make(map[schema.Key]uint64)
	for range execs {
		for k, v := range <-done {
			merged[k] = v
		}
	}
	close(stop)
	if len(merged) != 400 {
		t.Fatalf("read back %d keys, want 400", len(merged))
	}
	for k, v := range merged {
		if v != uint64(k)*2 {
			t.Fatalf("key %d = %d, want %d", k, v, uint64(k)*2)
		}
	}
	ships := int64(0)
	for _, ex := range execs {
		ships += ex.Stats.Ships
	}
	if ships == 0 {
		t.Fatal("expected cross-island ships, saw none")
	}
}

func TestPricedBackendConformance(t *testing.T) {
	d := testDomain(t)
	mgr := storage.NewManager(d)
	tbl, err := mgr.CreateTable(&schema.Table{
		Name:       "alpha",
		Columns:    []schema.Column{{Name: "id", Type: schema.Int64}},
		PrimaryKey: []string{"id"},
	}, nil, nil)
	if err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	var billed numa.Cost
	p := NewPriced([]*storage.Table{tbl}, []topology.CoreID{0, 1}, func(shard int, c numa.Cost) {
		billed += c
	})
	if p.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2", p.Shards())
	}
	p.Put(0, 0, 42, 1, 7)
	if v, ok := p.Get(1, 0, 42); !ok || v != 7 {
		t.Fatalf("Get = %d, %v; want 7, true", v, ok)
	}
	p.Put(0, 0, 42, 2, 8)
	if v, _ := p.Get(0, 0, 42); v != 8 {
		t.Fatalf("update lost: got %d", v)
	}
	n := p.Scan(0, 0, func(schema.Key, uint64) bool { return true })
	if n != 1 {
		t.Fatalf("Scan visited %d, want 1", n)
	}
	if !p.Delete(0, 0, 42, 3) {
		t.Fatal("Delete returned false")
	}
	if _, ok := p.Get(0, 0, 42); ok {
		t.Fatal("deleted key still present")
	}
	if billed == 0 {
		t.Fatal("priced backend billed no cost")
	}
}

func vnanos(i int) vclock.Nanos { return vclock.Nanos(i) * 1000 }

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 32: 32, 33: 64, 40: 64}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestShardOfStable(t *testing.T) {
	b := testHash(t, 8)
	for i := 0; i < 100; i++ {
		k := schema.Key(i)
		s1 := b.ShardOf(0, k)
		s2 := b.ShardOf(0, k)
		if s1 != s2 {
			t.Fatalf("ShardOf unstable for key %d", k)
		}
		if s1 < 0 || s1 >= b.Shards() {
			t.Fatalf("ShardOf(%d) = %d out of range", k, s1)
		}
		if b.ShardOf(0, k) == b.ShardOf(1, k) && i == 0 {
			// Tables may collide on individual keys; just ensure the
			// distributions differ somewhere.
			continue
		}
	}
}
