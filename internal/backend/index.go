package backend

import (
	"atrapos/internal/schema"
)

const (
	slotEmpty uint8 = iota
	slotFull
	slotTomb
)

// idxSlot is one open-addressing slot: key, value, and occupancy state.
type idxSlot struct {
	key   schema.Key
	val   uint64
	state uint8
}

// openIndex is a linear-probing open-addressing hash index. It is owned by a
// single executor and therefore completely lock-free — not in the CAS sense,
// but in the stronger one: no synchronization exists at all. Deletes leave
// tombstones so probe chains stay intact; the table grows (and sweeps
// tombstones) when live+tomb occupancy crosses 3/4.
type openIndex struct {
	slots []idxSlot
	live  int
	tomb  int
}

const idxInitialCap = 16

func (x *openIndex) mask() uint64 { return uint64(len(x.slots) - 1) }

// get probes for key.
func (x *openIndex) get(key schema.Key) (uint64, bool) {
	if len(x.slots) == 0 {
		return 0, false
	}
	m := x.mask()
	for i := mix64(uint64(key)) & m; ; i = (i + 1) & m {
		s := &x.slots[i]
		switch s.state {
		case slotEmpty:
			return 0, false
		case slotFull:
			if s.key == key {
				return s.val, true
			}
		}
	}
}

// put inserts or overwrites key and reports whether it was an insert.
func (x *openIndex) put(key schema.Key, val uint64) bool {
	if (x.live+x.tomb+1)*4 >= len(x.slots)*3 {
		x.grow()
	}
	m := x.mask()
	firstTomb := -1
	for i := mix64(uint64(key)) & m; ; i = (i + 1) & m {
		s := &x.slots[i]
		switch s.state {
		case slotEmpty:
			if firstTomb >= 0 {
				s = &x.slots[firstTomb]
				x.tomb--
			}
			s.key, s.val, s.state = key, val, slotFull
			x.live++
			return true
		case slotTomb:
			if firstTomb < 0 {
				firstTomb = int(i)
			}
		case slotFull:
			if s.key == key {
				s.val = val
				return false
			}
		}
	}
}

// del tombstones key and reports whether it was present.
func (x *openIndex) del(key schema.Key) bool {
	if len(x.slots) == 0 {
		return false
	}
	m := x.mask()
	for i := mix64(uint64(key)) & m; ; i = (i + 1) & m {
		s := &x.slots[i]
		switch s.state {
		case slotEmpty:
			return false
		case slotFull:
			if s.key == key {
				s.state = slotTomb
				x.live--
				x.tomb++
				return true
			}
		}
	}
}

// scan visits live entries in slot order until fn returns false; returns the
// number visited.
func (x *openIndex) scan(fn func(schema.Key, uint64) bool) int {
	n := 0
	for i := range x.slots {
		s := &x.slots[i]
		if s.state != slotFull {
			continue
		}
		n++
		if !fn(s.key, s.val) {
			break
		}
	}
	return n
}

// len returns the live entry count.
func (x *openIndex) len() int { return x.live }

// grow doubles capacity (or allocates the initial table) and rehashes live
// entries, dropping tombstones.
func (x *openIndex) grow() {
	newCap := idxInitialCap
	if len(x.slots) > 0 {
		newCap = len(x.slots) * 2
		// If tombstones alone pushed us over the threshold, rehashing at the
		// same size reclaims them without doubling.
		if x.live*4 < len(x.slots)*3/2 {
			newCap = len(x.slots)
		}
	}
	old := x.slots
	x.slots = make([]idxSlot, newCap)
	x.live, x.tomb = 0, 0
	m := x.mask()
	for i := range old {
		s := &old[i]
		if s.state != slotFull {
			continue
		}
		for j := mix64(uint64(s.key)) & m; ; j = (j + 1) & m {
			t := &x.slots[j]
			if t.state == slotEmpty {
				t.key, t.val, t.state = s.key, s.val, slotFull
				x.live++
				break
			}
		}
	}
}
