package fault

import (
	"strings"
	"testing"

	"atrapos/internal/vclock"
)

func ms(n int) vclock.Nanos { return vclock.Nanos(n) * vclock.Nanos(1e6) }

func TestScheduleValid(t *testing.T) {
	s, err := NewSchedule(Machine{Sockets: 4, Devices: 4},
		FailDevice(ms(1), 0),
		DegradeDevice(ms(2), 1, 4),
		FailSocket(ms(3), 3),
		CrashAndRecover(ms(3)), // equal times are allowed, fire in order
		RestoreSocket(ms(5), 3),
		FailSocket(ms(5), 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	if !s.HasCrash() {
		t.Error("HasCrash should see the crash drill")
	}
	if s.Last() != ms(5) {
		t.Errorf("Last = %v, want %v", s.Last(), ms(5))
	}
	if got := s.Machine(); got.Sockets != 4 || got.Devices != 4 {
		t.Errorf("Machine = %+v", got)
	}
	if str := s.String(); !strings.Contains(str, "fail-device(0)") || !strings.Contains(str, "degrade-device(1,x4)") {
		t.Errorf("String = %q", str)
	}
	// Events returns a copy.
	evs := s.Events()
	evs[0].Device = 99
	if s.Events()[0].Device == 99 {
		t.Error("Events must return a copy")
	}
}

func TestScheduleRejectsInvalid(t *testing.T) {
	m := Machine{Sockets: 2, Devices: 2}
	cases := []struct {
		name   string
		m      Machine
		events []Event
		want   string
	}{
		{"no sockets", Machine{}, nil, "at least one socket"},
		{"negative devices", Machine{Sockets: 1, Devices: -1}, nil, "negative device count"},
		{"time zero", m, []Event{FailSocket(0, 0)}, "positive virtual time"},
		{"out of order", m, []Event{FailSocket(ms(2), 0), RestoreSocket(ms(1), 0)}, "out of order"},
		{"unknown socket", m, []Event{FailSocket(ms(1), 2)}, "unknown socket 2"},
		{"negative socket", m, []Event{FailSocket(ms(1), -1)}, "unknown socket"},
		{"unknown device", m, []Event{FailDevice(ms(1), 5)}, "unknown device 5"},
		{"device without layout", Machine{Sockets: 2}, []Event{FailDevice(ms(1), 0)}, "no device layout"},
		{"degrade without layout", Machine{Sockets: 2}, []Event{DegradeDevice(ms(1), 0, 2)}, "no device layout"},
		{"double socket failure", m, []Event{FailSocket(ms(1), 0), FailSocket(ms(2), 0)}, "already failed"},
		{"restore alive socket", m, []Event{RestoreSocket(ms(1), 1)}, "alive at that point"},
		{"last socket", m, []Event{FailSocket(ms(1), 0), FailSocket(ms(2), 1)}, "last alive socket"},
		{"double device failure", m, []Event{FailDevice(ms(1), 1), FailDevice(ms(2), 1)}, "already failed"},
		{"last device", m, []Event{FailDevice(ms(1), 0), FailDevice(ms(2), 1)}, "last alive log device"},
		{"degrade failed device", m, []Event{FailDevice(ms(1), 0), DegradeDevice(ms(2), 0, 2)}, "an earlier event failed"},
		{"degrade factor", m, []Event{DegradeDevice(ms(1), 0, 0.5)}, "must be >= 1"},
		{"unknown kind", m, []Event{{At: ms(1), Kind: Kind(42)}}, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewSchedule(tc.m, tc.events...)
			if err == nil {
				t.Fatalf("NewSchedule accepted %v", tc.events)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestScheduleRestoreReenablesFailure(t *testing.T) {
	// fail -> restore -> fail the same socket again is a legal timeline.
	if _, err := NewSchedule(Machine{Sockets: 2},
		FailSocket(ms(1), 1), RestoreSocket(ms(2), 1), FailSocket(ms(3), 1)); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindFailSocket: "fail-socket", KindRestoreSocket: "restore-socket",
		KindFailDevice: "fail-device", KindDegradeDevice: "degrade-device",
		KindCrashAndRecover: "crash-and-recover", Kind(9): "Kind(9)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
