// Package fault provides declarative, virtual-time fault schedules: ordered
// lists of hardware failure and recovery events — processor sockets failing
// and returning, log devices failing or degrading, a full crash followed by
// log recovery — that any scenario can attach to an engine run. Schedules are
// validated at construction against a machine descriptor (socket and device
// counts) and against their own state history, so an impossible timeline
// (failing an already-failed socket, degrading a failed device, out-of-order
// times) is rejected before a run starts rather than silently misfiring
// mid-experiment.
//
// The package deliberately knows nothing about the engine: it describes
// faults, the engine compiles a schedule into its run-time event mechanism.
// That keeps the dependency direction the same as for topology and device —
// scenarios compose descriptions, the engine executes them.
package fault

import (
	"fmt"
	"strings"

	"atrapos/internal/topology"
	"atrapos/internal/vclock"
)

// Kind labels one fault event type.
type Kind int

const (
	// KindFailSocket marks a processor socket failed (Section VI-D3's
	// processor failure).
	KindFailSocket Kind = iota + 1
	// KindRestoreSocket returns a failed socket to service: elastic capacity
	// the planner re-expands onto.
	KindRestoreSocket
	// KindFailDevice marks a log device failed; island logs bound to it are
	// re-homed to surviving devices.
	KindFailDevice
	// KindDegradeDevice multiplies a log device's service time by a latency
	// factor: the device works, slower.
	KindDegradeDevice
	// KindCrashAndRecover drops the volatile state covered by the write-ahead
	// logs mid-run and replays recovery from the retained records.
	KindCrashAndRecover
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindFailSocket:
		return "fail-socket"
	case KindRestoreSocket:
		return "restore-socket"
	case KindFailDevice:
		return "fail-device"
	case KindDegradeDevice:
		return "degrade-device"
	case KindCrashAndRecover:
		return "crash-and-recover"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one fault at one virtual time. Use the constructors; only the
// fields relevant to the Kind are meaningful.
type Event struct {
	// At is the virtual time the fault fires.
	At vclock.Nanos
	// Kind is the fault type.
	Kind Kind
	// Socket is the target socket for socket events.
	Socket topology.SocketID
	// Device is the target device index for device events.
	Device int
	// LatencyFactor is the service-time multiplier for KindDegradeDevice.
	LatencyFactor float64
}

// FailSocket schedules a processor failure of socket s at virtual time at.
func FailSocket(at vclock.Nanos, s topology.SocketID) Event {
	return Event{At: at, Kind: KindFailSocket, Socket: s}
}

// RestoreSocket schedules the return of failed socket s at virtual time at.
func RestoreSocket(at vclock.Nanos, s topology.SocketID) Event {
	return Event{At: at, Kind: KindRestoreSocket, Socket: s}
}

// FailDevice schedules the failure of log device dev at virtual time at.
func FailDevice(at vclock.Nanos, dev int) Event {
	return Event{At: at, Kind: KindFailDevice, Device: dev}
}

// DegradeDevice schedules a slowdown of log device dev: from virtual time at
// on, its service times are multiplied by latencyFactor (>= 1; 1 restores
// full speed).
func DegradeDevice(at vclock.Nanos, dev int, latencyFactor float64) Event {
	return Event{At: at, Kind: KindDegradeDevice, Device: dev, LatencyFactor: latencyFactor}
}

// CrashAndRecover schedules a crash drill at virtual time at: volatile state
// covered by the logs is dropped and recovery replays the retained records.
func CrashAndRecover(at vclock.Nanos) Event {
	return Event{At: at, Kind: KindCrashAndRecover}
}

// String renders the event in the compact form reproducer descriptors use.
func (e Event) String() string {
	switch e.Kind {
	case KindFailSocket, KindRestoreSocket:
		return fmt.Sprintf("%s(%d)@%d", e.Kind, e.Socket, int64(e.At))
	case KindFailDevice:
		return fmt.Sprintf("%s(%d)@%d", e.Kind, e.Device, int64(e.At))
	case KindDegradeDevice:
		return fmt.Sprintf("%s(%d,x%g)@%d", e.Kind, e.Device, e.LatencyFactor, int64(e.At))
	default:
		return fmt.Sprintf("%s@%d", e.Kind, int64(e.At))
	}
}

// Machine describes the hardware a schedule targets: how many sockets the
// topology has and how many log devices the layout provisions (zero when the
// scenario runs without a device layout). Validation is against this
// descriptor, so a schedule can be built — and rejected — before any engine
// exists.
type Machine struct {
	Sockets int
	Devices int
}

// Schedule is a validated, time-ordered fault schedule. Construct with
// NewSchedule; the zero value is not usable.
type Schedule struct {
	machine Machine
	events  []Event
}

// NewSchedule validates the events against the machine descriptor and against
// their own history and returns the schedule. It rejects:
//
//   - non-positive or decreasing event times (faults at time zero would race
//     engine run setup; equal times are allowed and fire in order),
//   - unknown socket or device indices, and any device event when the
//     machine has no log devices,
//   - impossible transitions: failing a failed socket or device, restoring
//     an alive socket, degrading a failed device,
//   - schedules that leave no alive socket or no alive log device — the
//     model (like the engine) always keeps one of each to run on,
//   - degrade factors below one.
func NewSchedule(m Machine, events ...Event) (*Schedule, error) {
	if m.Sockets < 1 {
		return nil, fmt.Errorf("fault: machine must have at least one socket, got %d", m.Sockets)
	}
	if m.Devices < 0 {
		return nil, fmt.Errorf("fault: negative device count %d", m.Devices)
	}
	deadSockets := make([]bool, m.Sockets)
	deadDevices := make([]bool, m.Devices)
	aliveSockets, aliveDevices := m.Sockets, m.Devices
	var last vclock.Nanos
	for i, ev := range events {
		if ev.At <= 0 {
			return nil, fmt.Errorf("fault: event %d (%s) must fire at a positive virtual time", i, ev.Kind)
		}
		if ev.At < last {
			return nil, fmt.Errorf("fault: event %d (%s) at %d is out of order (previous event at %d)", i, ev.Kind, int64(ev.At), int64(last))
		}
		last = ev.At
		switch ev.Kind {
		case KindFailSocket, KindRestoreSocket:
			if int(ev.Socket) < 0 || int(ev.Socket) >= m.Sockets {
				return nil, fmt.Errorf("fault: event %d (%s) targets unknown socket %d (machine has %d)", i, ev.Kind, ev.Socket, m.Sockets)
			}
			if ev.Kind == KindFailSocket {
				if deadSockets[ev.Socket] {
					return nil, fmt.Errorf("fault: event %d fails socket %d, which an earlier event already failed", i, ev.Socket)
				}
				if aliveSockets == 1 {
					return nil, fmt.Errorf("fault: event %d would fail the last alive socket %d", i, ev.Socket)
				}
				deadSockets[ev.Socket] = true
				aliveSockets--
			} else {
				if !deadSockets[ev.Socket] {
					return nil, fmt.Errorf("fault: event %d restores socket %d, which is alive at that point of the schedule", i, ev.Socket)
				}
				deadSockets[ev.Socket] = false
				aliveSockets++
			}
		case KindFailDevice, KindDegradeDevice:
			if m.Devices == 0 {
				return nil, fmt.Errorf("fault: event %d (%s) targets a log device, but the machine has no device layout", i, ev.Kind)
			}
			if ev.Device < 0 || ev.Device >= m.Devices {
				return nil, fmt.Errorf("fault: event %d (%s) targets unknown device %d (layout has %d)", i, ev.Kind, ev.Device, m.Devices)
			}
			if ev.Kind == KindFailDevice {
				if deadDevices[ev.Device] {
					return nil, fmt.Errorf("fault: event %d fails device %d, which an earlier event already failed", i, ev.Device)
				}
				if aliveDevices == 1 {
					return nil, fmt.Errorf("fault: event %d would fail the last alive log device %d", i, ev.Device)
				}
				deadDevices[ev.Device] = true
				aliveDevices--
			} else {
				if deadDevices[ev.Device] {
					return nil, fmt.Errorf("fault: event %d degrades device %d, which an earlier event failed", i, ev.Device)
				}
				if ev.LatencyFactor < 1 {
					return nil, fmt.Errorf("fault: event %d degrade factor %v must be >= 1", i, ev.LatencyFactor)
				}
			}
		case KindCrashAndRecover:
			// No target to validate; the engine checks its own preconditions
			// (a serial run) when the schedule is attached.
		default:
			return nil, fmt.Errorf("fault: event %d has unknown kind %v", i, ev.Kind)
		}
	}
	return &Schedule{machine: m, events: append([]Event(nil), events...)}, nil
}

// Machine returns the machine descriptor the schedule was validated against.
func (s *Schedule) Machine() Machine { return s.machine }

// Events returns a copy of the schedule's events in firing order.
func (s *Schedule) Events() []Event { return append([]Event(nil), s.events...) }

// Len returns the number of events.
func (s *Schedule) Len() int { return len(s.events) }

// HasCrash reports whether the schedule contains a crash drill.
func (s *Schedule) HasCrash() bool {
	for _, ev := range s.events {
		if ev.Kind == KindCrashAndRecover {
			return true
		}
	}
	return false
}

// Last returns the firing time of the final event (zero for an empty
// schedule); scenarios use it to leave settle time after the last fault.
func (s *Schedule) Last() vclock.Nanos {
	if len(s.events) == 0 {
		return 0
	}
	return s.events[len(s.events)-1].At
}

// String renders the schedule compactly, e.g. for fuzzer reproducers.
func (s *Schedule) String() string {
	if len(s.events) == 0 {
		return "[]"
	}
	parts := make([]string, len(s.events))
	for i, ev := range s.events {
		parts[i] = ev.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}
