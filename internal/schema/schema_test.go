package schema

import (
	"testing"
	"testing/quick"
)

func sampleTable() *Table {
	return &Table{
		Name: "orders",
		Columns: []Column{
			{Name: "o_id", Type: Int64},
			{Name: "o_c_id", Type: Int64},
			{Name: "o_total", Type: Float64},
			{Name: "o_comment", Type: String},
		},
		PrimaryKey: []string{"o_id"},
		ForeignKeys: []ForeignKey{
			{Column: "o_c_id", RefTable: "customer", RefColumn: "c_id"},
		},
	}
}

func TestTableValidate(t *testing.T) {
	if err := sampleTable().Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Table)
	}{
		{"empty name", func(tb *Table) { tb.Name = "" }},
		{"no columns", func(tb *Table) { tb.Columns = nil }},
		{"empty column name", func(tb *Table) { tb.Columns[0].Name = "" }},
		{"duplicate column", func(tb *Table) { tb.Columns[1].Name = "o_id" }},
		{"no primary key", func(tb *Table) { tb.PrimaryKey = nil }},
		{"unknown pk column", func(tb *Table) { tb.PrimaryKey = []string{"nope"} }},
		{"unknown fk column", func(tb *Table) { tb.ForeignKeys[0].Column = "nope" }},
		{"incomplete fk", func(tb *Table) { tb.ForeignKeys[0].RefTable = "" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := sampleTable()
			tc.mutate(tb)
			if err := tb.Validate(); err == nil {
				t.Errorf("expected validation error for %s", tc.name)
			}
		})
	}
}

func TestColumnIndexAndTypeString(t *testing.T) {
	tb := sampleTable()
	if tb.ColumnIndex("o_total") != 2 {
		t.Errorf("ColumnIndex(o_total) = %d, want 2", tb.ColumnIndex("o_total"))
	}
	if tb.ColumnIndex("missing") != -1 {
		t.Error("missing column should return -1")
	}
	for _, ct := range []ColumnType{Int64, Float64, String, ColumnType(9)} {
		if ct.String() == "" {
			t.Errorf("empty string for %d", ct)
		}
	}
}

func TestRowCloneAndSize(t *testing.T) {
	r := Row{int64(1), 2.5, "hello"}
	c := r.Clone()
	c[0] = int64(9)
	if r[0].(int64) != 1 {
		t.Error("Clone did not copy the row")
	}
	if r.Size() != 8+8+5 {
		t.Errorf("Size = %d, want 21", r.Size())
	}
}

func TestKeyFromIntOrderPreserving(t *testing.T) {
	prop := func(aRaw, bRaw uint32) bool {
		a, b := int64(aRaw), int64(bRaw)
		ka, kb := KeyFromInt(a), KeyFromInt(b)
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyFromIntRoundTrip(t *testing.T) {
	prop := func(vRaw uint32) bool {
		v := int64(vRaw)
		return KeyFromInt(v).Int() == v
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	// Negative values are clamped rather than wrapping around.
	if KeyFromInt(-5) != 0 {
		t.Errorf("KeyFromInt(-5) = %d, want 0", KeyFromInt(-5))
	}
}

func TestKeyFromStringPrefixOrder(t *testing.T) {
	if KeyFromString("apple") >= KeyFromString("banana") {
		t.Error("apple should order before banana")
	}
	if KeyFromString("") >= KeyFromString("a") {
		t.Error("empty string should order first")
	}
}

func TestCompositeKeyOrdering(t *testing.T) {
	if CompositeKey(1, 500) >= CompositeKey(2, 1) {
		t.Error("primary component must dominate ordering")
	}
	if CompositeKey(3, 1) >= CompositeKey(3, 2) {
		t.Error("secondary component must break ties")
	}
}

func TestRowKey(t *testing.T) {
	tb := sampleTable()
	k, err := RowKey(tb, Row{int64(42), int64(7), 1.0, "x"})
	if err != nil {
		t.Fatal(err)
	}
	if k != KeyFromInt(42) {
		t.Errorf("RowKey = %d, want %d", k, KeyFromInt(42))
	}

	// Composite integer key.
	comp := &Table{
		Name:       "stock",
		Columns:    []Column{{Name: "w_id", Type: Int64}, {Name: "i_id", Type: Int64}},
		PrimaryKey: []string{"w_id", "i_id"},
	}
	k, err = RowKey(comp, Row{int64(3), int64(9)})
	if err != nil {
		t.Fatal(err)
	}
	if k != CompositeKey(3, 9) {
		t.Errorf("composite RowKey = %d, want %d", k, CompositeKey(3, 9))
	}

	// String key.
	str := &Table{
		Name:       "names",
		Columns:    []Column{{Name: "n", Type: String}},
		PrimaryKey: []string{"n"},
	}
	if _, err := RowKey(str, Row{"abc"}); err != nil {
		t.Errorf("string RowKey error: %v", err)
	}

	// Errors.
	if _, err := RowKey(&Table{Name: "x", Columns: []Column{{Name: "a", Type: Int64}}}, Row{int64(1)}); err == nil {
		t.Error("table without primary key should error")
	}
	if _, err := RowKey(tb, Row{}); err == nil {
		t.Error("short row should error")
	}
	if _, err := RowKey(tb, Row{3.14, int64(1), 1.0, "x"}); err == nil {
		t.Error("float primary key should error")
	}
	badComp := &Table{
		Name:       "bad",
		Columns:    []Column{{Name: "a", Type: Int64}, {Name: "b", Type: String}},
		PrimaryKey: []string{"a", "b"},
	}
	if _, err := RowKey(badComp, Row{int64(1), "x"}); err == nil {
		t.Error("non-integer second key column should error")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	if err := c.Add(sampleTable()); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(sampleTable()); err == nil {
		t.Error("duplicate table should be rejected")
	}
	if err := c.Add(&Table{Name: ""}); err == nil {
		t.Error("invalid table should be rejected")
	}
	customer := &Table{
		Name:       "customer",
		Columns:    []Column{{Name: "c_id", Type: Int64}},
		PrimaryKey: []string{"c_id"},
	}
	if err := c.Add(customer); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("orders"); !ok {
		t.Error("orders not found")
	}
	if _, ok := c.Table("nope"); ok {
		t.Error("unexpected table")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "customer" || names[1] != "orders" {
		t.Errorf("Names = %v", names)
	}
	deps := c.Dependencies()
	if len(deps["orders"]) != 1 || deps["orders"][0] != "customer" {
		t.Errorf("Dependencies[orders] = %v", deps["orders"])
	}
	if len(deps["customer"]) != 0 {
		t.Errorf("Dependencies[customer] = %v", deps["customer"])
	}
	if c.String() == "" {
		t.Error("catalog String should not be empty")
	}
}
