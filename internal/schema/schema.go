// Package schema defines the logical data model of the storage manager:
// columns, tables, rows, primary keys, foreign keys and the catalog. It is
// deliberately simple — fixed typed columns, integer or string values — since
// the paper's workloads (TATP, TPC-C and the microbenchmarks) only need
// integer keys, short strings and numeric payload columns.
package schema

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ColumnType enumerates the supported column types.
type ColumnType int

const (
	// Int64 is a 64-bit signed integer column.
	Int64 ColumnType = iota
	// Float64 is a floating-point column.
	Float64
	// String is a variable-length string column.
	String
)

// String implements fmt.Stringer.
func (t ColumnType) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// Column describes a single column of a table.
type Column struct {
	Name string
	Type ColumnType
}

// ForeignKey declares that column Column of the owning table references the
// primary key column RefColumn of table RefTable. Foreign keys are the static
// data dependencies the ATraPos cost model extracts from the schema
// (Section V-A, "Static workload information").
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// Table describes a table: its columns, the primary-key column(s) and any
// foreign keys.
type Table struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []ForeignKey
}

// Validate checks structural invariants of the table definition.
func (t *Table) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("schema: table with empty name")
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("schema: table %s has no columns", t.Name)
	}
	seen := make(map[string]struct{}, len(t.Columns))
	for _, c := range t.Columns {
		if c.Name == "" {
			return fmt.Errorf("schema: table %s has a column with empty name", t.Name)
		}
		if _, dup := seen[c.Name]; dup {
			return fmt.Errorf("schema: table %s has duplicate column %s", t.Name, c.Name)
		}
		seen[c.Name] = struct{}{}
	}
	if len(t.PrimaryKey) == 0 {
		return fmt.Errorf("schema: table %s has no primary key", t.Name)
	}
	for _, pk := range t.PrimaryKey {
		if _, ok := seen[pk]; !ok {
			return fmt.Errorf("schema: table %s primary key column %s does not exist", t.Name, pk)
		}
	}
	for _, fk := range t.ForeignKeys {
		if _, ok := seen[fk.Column]; !ok {
			return fmt.Errorf("schema: table %s foreign key column %s does not exist", t.Name, fk.Column)
		}
		if fk.RefTable == "" || fk.RefColumn == "" {
			return fmt.Errorf("schema: table %s has incomplete foreign key on %s", t.Name, fk.Column)
		}
	}
	return nil
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Value is one cell value. Only int64, float64 and string are used.
type Value any

// Row is a tuple: one value per column, in column order.
type Row []Value

// Clone returns a copy of the row (values are immutable scalars, so a shallow
// copy of the slice suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Size returns the approximate size of the row in bytes; it feeds the
// Data(s) = Distance(s) * Size(s) term of the synchronization cost model.
func (r Row) Size() int {
	size := 0
	for _, v := range r {
		switch x := v.(type) {
		case string:
			size += len(x)
		default:
			size += 8
		}
	}
	return size
}

// Key is an order-preserving encoding of a primary key value used by the
// B-trees and by range partitioning. Integer keys map directly; composite and
// string keys are folded into a comparable uint64.
type Key uint64

// KeyFromInt maps a non-negative integer primary key onto a Key. The mapping
// is the identity so that key 0 coincides with the lowest partition bound
// used by range partitioning; negative values (which no workload uses) are
// clamped to 0.
func KeyFromInt(v int64) Key {
	if v < 0 {
		return 0
	}
	return Key(v)
}

// Int returns the integer that produced this key via KeyFromInt.
func (k Key) Int() int64 {
	return int64(k)
}

// KeyFromString folds a string into an order-preserving (prefix-based) key.
func KeyFromString(s string) Key {
	var k uint64
	for i := 0; i < 8; i++ {
		k <<= 8
		if i < len(s) {
			k |= uint64(s[i])
		}
	}
	return Key(k)
}

// CompositeKey combines a primary component with a secondary component into a
// single ordered key, e.g. (warehouse id, district id) in TPC-C. The primary
// component dominates the ordering; the secondary must fit in 20 bits.
func CompositeKey(primary int64, secondary int64) Key {
	return Key((uint64(primary) << 20) | (uint64(secondary) & ((1 << 20) - 1)))
}

// RowKey extracts the Key of a row according to the table's primary key.
// Integer single-column keys use KeyFromInt; multi-column integer keys use
// CompositeKey over the first two columns; string keys use KeyFromString.
func RowKey(t *Table, r Row) (Key, error) {
	if len(t.PrimaryKey) == 0 {
		return 0, fmt.Errorf("schema: table %s has no primary key", t.Name)
	}
	idx0 := t.ColumnIndex(t.PrimaryKey[0])
	if idx0 < 0 || idx0 >= len(r) {
		return 0, fmt.Errorf("schema: row for %s is missing primary key column %s", t.Name, t.PrimaryKey[0])
	}
	switch v := r[idx0].(type) {
	case int64:
		if len(t.PrimaryKey) >= 2 {
			idx1 := t.ColumnIndex(t.PrimaryKey[1])
			if idx1 < 0 || idx1 >= len(r) {
				return 0, fmt.Errorf("schema: row for %s is missing primary key column %s", t.Name, t.PrimaryKey[1])
			}
			second, ok := r[idx1].(int64)
			if !ok {
				return 0, fmt.Errorf("schema: composite key column %s of %s is not int64", t.PrimaryKey[1], t.Name)
			}
			return CompositeKey(v, second), nil
		}
		return KeyFromInt(v), nil
	case string:
		return KeyFromString(v), nil
	default:
		return 0, fmt.Errorf("schema: unsupported primary key type %T in table %s", v, t.Name)
	}
}

// Catalog is a thread-safe registry of table definitions.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Add validates and registers a table definition.
func (c *Catalog) Add(t *Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[t.Name]; exists {
		return fmt.Errorf("schema: table %s already exists", t.Name)
	}
	c.tables[t.Name] = t
	return nil
}

// Table looks a table up by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// Tables returns all table definitions sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted table names.
func (c *Catalog) Names() []string {
	tables := c.Tables()
	out := make([]string, len(tables))
	for i, t := range tables {
		out[i] = t.Name
	}
	return out
}

// Dependencies returns, for each table, the set of tables it references via
// foreign keys. ATraPos uses these static dependencies when it builds
// transaction flow graphs and when it co-locates dependent partitions.
func (c *Catalog) Dependencies() map[string][]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string][]string, len(c.tables))
	for name, t := range c.tables {
		seen := map[string]struct{}{}
		var refs []string
		for _, fk := range t.ForeignKeys {
			if _, dup := seen[fk.RefTable]; dup {
				continue
			}
			seen[fk.RefTable] = struct{}{}
			refs = append(refs, fk.RefTable)
		}
		sort.Strings(refs)
		out[name] = refs
	}
	return out
}

// String renders the catalog as a compact schema listing.
func (c *Catalog) String() string {
	var b strings.Builder
	for _, t := range c.Tables() {
		fmt.Fprintf(&b, "%s(", t.Name)
		for i, col := range t.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", col.Name, col.Type)
		}
		fmt.Fprintf(&b, ") pk=%v\n", t.PrimaryKey)
	}
	return b.String()
}
