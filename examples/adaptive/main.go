// Adaptive example: demonstrate the three adaptivity scenarios of the paper's
// Section VI-D on one simulated machine — a workload change, a sudden access
// skew and a processor failure — comparing a static system against ATraPos
// with monitoring and adaptive repartitioning enabled.
package main

import (
	"fmt"
	"log"

	"atrapos"
)

const (
	subscribers = 30_000
	// One "paper second" is compressed to one virtual millisecond so the
	// whole demo finishes in a few real seconds.
	paperSecond = 0.001
)

func main() {
	top, err := atrapos.NewTopology(4, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Scenario 1: workload change (Figure 10) ===")
	workloadChange(top)

	fmt.Println("\n=== Scenario 2: sudden skew (Figure 11) ===")
	suddenSkew(top)

	fmt.Println("\n=== Scenario 3: processor failure (Figure 12) ===")
	socketFailure(top)
}

func workloadChange(top *atrapos.Topology) {
	wl, err := atrapos.TATP(atrapos.TATPOptions{
		Subscribers: subscribers,
		MixAt: func(at atrapos.VirtualTime) map[string]float64 {
			switch {
			case at < atrapos.Seconds(30*paperSecond):
				return map[string]float64{"UpdSubData": 1}
			case at < atrapos.Seconds(60*paperSecond):
				return map[string]float64{"GetNewDest": 1}
			default:
				return map[string]float64{"GetSubData": 35, "GetNewDest": 10, "GetAccData": 35, "UpdSubData": 2, "UpdLocation": 14, "InsCallFwd": 2, "DelCallFwd": 2}
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	compare(top, wl, atrapos.Seconds(90*paperSecond), nil, nil)
}

func suddenSkew(top *atrapos.Topology) {
	wl, err := atrapos.TATP(atrapos.TATPOptions{
		Subscribers: subscribers,
		Mix:         map[string]float64{"GetSubData": 1},
		Skew:        atrapos.Skew{HotDataFraction: 0.2, HotAccessFraction: 0.5, Start: atrapos.Seconds(20 * paperSecond)},
	})
	if err != nil {
		log.Fatal(err)
	}
	compare(top, wl, atrapos.Seconds(50*paperSecond), nil, nil)
}

func socketFailure(top *atrapos.Topology) {
	wl, err := atrapos.TATP(atrapos.TATPOptions{
		Subscribers: subscribers,
		Mix:         map[string]float64{"GetSubData": 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	// The last socket fails 20 "paper seconds" into the run and comes back at
	// 50: the elastic half of the scenario. The adaptive planner contracts
	// onto the surviving sockets after the failure and re-expands onto the
	// restored capacity, so its throughput recovers to near the healthy
	// level (minus the re-wiring it paid for along the way). Each system
	// needs a fresh topology so one run's failure does not leak into the
	// next.
	compare(top, wl, atrapos.Seconds(80*paperSecond), []atrapos.Event{
		atrapos.FailSocketAt(atrapos.Seconds(20*paperSecond), top.Sockets()-1),
		atrapos.RestoreSocketAt(atrapos.Seconds(50*paperSecond), top.Sockets()-1),
	}, []phase{
		// Phase windows skip two paper seconds after each event so the
		// adaptive planner's re-wiring settles, and the restored phase ends
		// well before the run does: duration-driven runs taper off toward the
		// end as cores drain at different virtual times, and that wind-down
		// would otherwise drag the average.
		{"healthy", 2, 20},
		{"socket failed", 22, 50},
		{"socket restored", 52, 60},
	})
}

// phase labels a window of the run, in paper seconds, for the per-phase
// throughput printout of the failure scenario.
type phase struct {
	label      string
	fromS, toS float64
}

// phaseTPS averages the sample windows that fall inside (from, to].
func phaseTPS(res *atrapos.Result, p phase) float64 {
	from := atrapos.Seconds(p.fromS * paperSecond)
	to := atrapos.Seconds(p.toS * paperSecond)
	var sum float64
	var n int
	for _, s := range res.Series {
		if s.At > from && s.At <= to {
			sum += s.Throughput
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// compare runs the workload on a static ATraPos system and on an adaptive one
// and prints their average throughput plus the adaptive system's
// repartitioning activity. When phases are given, both systems also get a
// per-phase throughput breakdown.
func compare(top *atrapos.Topology, wl *atrapos.Workload, duration atrapos.VirtualTime, events []atrapos.Event, phases []phase) {
	run := func(adaptive bool) *atrapos.Result {
		freshTop, err := atrapos.NewTopology(top.Sockets(), top.CoresPerSocket())
		if err != nil {
			log.Fatal(err)
		}
		sys, err := atrapos.Open(atrapos.Options{
			Design:   atrapos.DesignATraPos,
			Workload: wl,
			Topology: freshTop,
			Adaptive: adaptive,
			// The paper's 1 s / 8 s monitoring intervals, mapped onto the
			// compressed time scale of the demo.
			AdaptiveInterval: atrapos.IntervalConfig{
				Initial:         atrapos.Seconds(paperSecond),
				Max:             atrapos.Seconds(8 * paperSecond),
				StableThreshold: 0.10,
				History:         5,
			},
			TimeCompression: 1 / paperSecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(atrapos.RunOptions{
			Duration:     duration,
			Seed:         5,
			SampleWindow: atrapos.Seconds(paperSecond),
			Events:       events,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	static := run(false)
	adaptive := run(true)
	fmt.Printf("  static : %8.0f TPS over %d samples\n", static.ThroughputTPS, len(static.Series))
	fmt.Printf("  atrapos: %8.0f TPS over %d samples, %d repartitioning(s), %.2f ms repartitioning time\n",
		adaptive.ThroughputTPS, len(adaptive.Series), adaptive.Repartitions, adaptive.RepartitionTime.Seconds()*1e3)
	if adaptive.ThroughputTPS > static.ThroughputTPS {
		fmt.Printf("  -> adaptation gained %.0f%%\n", (adaptive.ThroughputTPS/static.ThroughputTPS-1)*100)
	}
	for _, p := range phases {
		fmt.Printf("  %-15s (%2.0f-%2.0fs): static %8.0f TPS, atrapos %8.0f TPS\n",
			p.label, p.fromS, p.toS, phaseTPS(static, p), phaseTPS(adaptive, p))
	}
}
