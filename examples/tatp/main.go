// TATP example: run the TATP telecom benchmark (the paper's Figure 8, left)
// on PLP and on ATraPos, for individual transaction classes and for the
// standard mix, and report the normalized improvement.
package main

import (
	"fmt"
	"log"

	"atrapos"
)

func main() {
	top, err := atrapos.NewTopology(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	const subscribers = 50_000

	cases := []struct {
		label string
		mix   map[string]float64
	}{
		{"GetSubData", map[string]float64{"GetSubData": 1}},
		{"GetNewDest", map[string]float64{"GetNewDest": 1}},
		{"UpdSubData", map[string]float64{"UpdSubData": 1}},
		{"TATP-Mix", nil}, // nil selects the standard TATP mix
	}

	fmt.Printf("TATP with %d subscribers on %s\n\n", subscribers, top)
	fmt.Printf("%-12s %14s %14s %12s\n", "workload", "PLP", "ATraPos", "improvement")

	for _, c := range cases {
		wl, err := atrapos.TATP(atrapos.TATPOptions{Subscribers: subscribers, Mix: c.mix})
		if err != nil {
			log.Fatal(err)
		}
		plp := run(wl, top, atrapos.DesignPLP)
		atr := run(wl, top, atrapos.DesignATraPos)
		fmt.Printf("%-12s %10.0f TPS %10.0f TPS %11.2fx\n", c.label, plp, atr, atr/plp)
	}
}

func run(wl *atrapos.Workload, top *atrapos.Topology, d atrapos.Design) float64 {
	sys, err := atrapos.Open(atrapos.Options{Design: d, Workload: wl, Topology: top})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(atrapos.RunOptions{Transactions: 15_000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	return res.ThroughputTPS
}
