// TPC-C example: print the NewOrder transaction flow graph the partitioning
// cost model works from (the paper's Figure 7), then run the TPC-C mix on
// the centralized design and on ATraPos and report the per-component time
// breakdown of each.
package main

import (
	"fmt"
	"log"

	"atrapos"
	"atrapos/internal/vclock"
	"atrapos/internal/workload"
)

func main() {
	// Figure 7: the static execution plan of the NewOrder transaction.
	fmt.Println("TPC-C NewOrder transaction flow graph (Figure 7):")
	fmt.Println(workload.NewOrderFlowGraph().String())

	top, err := atrapos.NewTopology(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := atrapos.TPCC(atrapos.TPCCOptions{
		Warehouses:           8,
		CustomersPerDistrict: 300,
		Items:                10_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TPC-C with 8 warehouses on %s\n\n", top)
	for _, design := range []atrapos.Design{atrapos.DesignCentralized, atrapos.DesignATraPos} {
		sys, err := atrapos.Open(atrapos.Options{Design: design, Workload: wl, Topology: top})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(atrapos.RunOptions{Transactions: 5_000, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %.0f TPS (%d committed, %d aborted)\n", design, res.ThroughputTPS, res.Committed, res.Aborted)
		for _, comp := range vclock.Components() {
			fmt.Printf("    %-16s %8.1f us/txn\n", comp, res.TimePerTransaction(comp)/1e3)
		}
		fmt.Println()
	}
}
