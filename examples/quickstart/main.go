// Quickstart: open an ATraPos system on a simulated multisocket machine, run
// a perfectly partitionable workload on several designs, and compare their
// throughput — the smallest possible version of the paper's Figure 5.
package main

import (
	"fmt"
	"log"

	"atrapos"
)

func main() {
	// A 4-socket, 16-core hardware-Islands machine.
	top, err := atrapos.NewTopology(4, 4)
	if err != nil {
		log.Fatal(err)
	}

	// The perfectly partitionable microbenchmark: every transaction reads one
	// row of a 100k-row table.
	wl := atrapos.SingleRowRead(100_000)

	fmt.Printf("machine: %s\nworkload: %s\n\n", top, wl.Name)
	fmt.Printf("%-28s %14s %10s\n", "design", "throughput", "useful")

	for _, design := range []atrapos.Design{
		atrapos.DesignCentralized,
		atrapos.DesignSharedNothingExtreme,
		atrapos.DesignPLP,
		atrapos.DesignATraPos,
	} {
		sys, err := atrapos.Open(atrapos.Options{
			Design:   design,
			Workload: wl,
			Topology: top,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(atrapos.RunOptions{Transactions: 20_000, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %11.0f TPS %9.0f%%\n", design, res.ThroughputTPS, res.UsefulFraction*100)
	}

	fmt.Println("\nThe centralized design loses throughput to contended shared state, while")
	fmt.Println("ATraPos tracks the shared-nothing configurations, as in the paper's Figure 5.")
}
