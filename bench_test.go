package atrapos

// This file holds one benchmark per table and figure of the paper's
// evaluation section (plus the ablation benches listed in DESIGN.md). Each
// benchmark regenerates its table through the experiment harness and reports
// headline numbers as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation at a reduced scale. Use cmd/atrapos-bench
// to print the full tables, or -scale=paper there for the paper's scale.

import (
	"strconv"
	"strings"
	"testing"

	"atrapos/internal/harness"
)

// benchScale keeps every benchmark iteration to a few hundred milliseconds.
func benchScale() harness.Scale {
	s := harness.QuickScale()
	s.CoresPerSocket = 2
	s.MicroRows = 4000
	s.Subscribers = 4000
	s.Warehouses = 2
	s.CustomersPerDistrict = 40
	s.Items = 1000
	s.Transactions = 1500
	return s
}

func runExperimentBench(b *testing.B, id string, metric func(*harness.Table) map[string]float64) {
	b.Helper()
	exp, ok := harness.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var last *harness.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.Run(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if last != nil && metric != nil {
		for name, v := range metric(last) {
			b.ReportMetric(v, name)
		}
	}
	if last != nil && testing.Verbose() {
		b.Log("\n" + last.String())
	}
}

// parse helpers for the rendered tables.

func cellTPS(cell string) float64 {
	fields := strings.Fields(cell)
	if len(fields) == 0 {
		return 0
	}
	v, _ := strconv.ParseFloat(fields[0], 64)
	switch {
	case strings.Contains(cell, "MTPS"):
		return v * 1e6
	case strings.Contains(cell, "KTPS"):
		return v * 1e3
	default:
		return v
	}
}

func cellFloat(cell string) float64 {
	v, _ := strconv.ParseFloat(strings.TrimRight(cell, "x%"), 64)
	return v
}

// BenchmarkFig01_IPC regenerates Figure 1 (useful-work fraction proxy for IPC).
func BenchmarkFig01_IPC(b *testing.B) {
	runExperimentBench(b, "fig1", func(t *harness.Table) map[string]float64 {
		last := t.Rows[len(t.Rows)-1]
		return map[string]float64{
			"sn_useful_frac":      cellFloat(last[1]),
			"central_useful_frac": cellFloat(last[2]),
			"plp_useful_frac":     cellFloat(last[3]),
		}
	})
}

// BenchmarkFig02_PartitionableScaling regenerates Figure 2.
func BenchmarkFig02_PartitionableScaling(b *testing.B) {
	runExperimentBench(b, "fig2", func(t *harness.Table) map[string]float64 {
		last := t.Rows[len(t.Rows)-1]
		return map[string]float64{
			"extremeSN_tps":   cellTPS(last[1]),
			"centralized_tps": cellTPS(last[2]),
			"plp_tps":         cellTPS(last[3]),
		}
	})
}

// BenchmarkFig03_MultisiteThroughput regenerates Figure 3.
func BenchmarkFig03_MultisiteThroughput(b *testing.B) {
	runExperimentBench(b, "fig3", func(t *harness.Table) map[string]float64 {
		return map[string]float64{
			"coarseSN_0pct_tps":   cellTPS(t.Rows[0][2]),
			"coarseSN_100pct_tps": cellTPS(t.Rows[len(t.Rows)-1][2]),
		}
	})
}

// BenchmarkFig04_TimeBreakdown regenerates Figure 4.
func BenchmarkFig04_TimeBreakdown(b *testing.B) {
	runExperimentBench(b, "fig4", func(t *harness.Table) map[string]float64 {
		last := t.Rows[len(t.Rows)-1]
		return map[string]float64{
			"comm_us_per_txn_100pct": cellFloat(last[3]),
			"log_us_per_txn_100pct":  cellFloat(last[5]),
		}
	})
}

// BenchmarkTable1_MemoryPolicies regenerates Table I.
func BenchmarkTable1_MemoryPolicies(b *testing.B) {
	runExperimentBench(b, "table1", func(t *harness.Table) map[string]float64 {
		avg := func(row []string) float64 {
			total, n := 0.0, 0
			for _, c := range row[1 : len(row)-1] {
				if v, err := strconv.ParseFloat(c, 64); err == nil && v > 0 {
					total += v
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return total / float64(n)
		}
		return map[string]float64{
			"local_tps_per_socket":  avg(t.Rows[0]),
			"remote_tps_per_socket": avg(t.Rows[2]),
		}
	})
}

// BenchmarkFig05_ATraPosScaling regenerates Figure 5.
func BenchmarkFig05_ATraPosScaling(b *testing.B) {
	runExperimentBench(b, "fig5", func(t *harness.Table) map[string]float64 {
		last := t.Rows[len(t.Rows)-1]
		return map[string]float64{
			"extremeSN_tps": cellTPS(last[1]),
			"atrapos_tps":   cellTPS(last[3]),
			"plp_tps":       cellTPS(last[4]),
		}
	})
}

// BenchmarkFig06_PartitioningStrategies regenerates Figure 6.
func BenchmarkFig06_PartitioningStrategies(b *testing.B) {
	runExperimentBench(b, "fig6", func(t *harness.Table) map[string]float64 {
		return map[string]float64{
			"centralized_tps": cellTPS(t.Rows[0][1]),
			"hw_aware_tps":    cellTPS(t.Rows[2][1]),
			"atrapos_tps":     cellTPS(t.Rows[4][1]),
		}
	})
}

// BenchmarkFig07_NewOrderFlowGraph regenerates Figure 7 (structural).
func BenchmarkFig07_NewOrderFlowGraph(b *testing.B) {
	runExperimentBench(b, "fig7", func(t *harness.Table) map[string]float64 {
		return map[string]float64{"nodes": float64(len(t.Rows)), "sync_points": float64(len(t.Notes))}
	})
}

// BenchmarkFig08_StandardBenchmarks regenerates Figure 8.
func BenchmarkFig08_StandardBenchmarks(b *testing.B) {
	runExperimentBench(b, "fig8", func(t *harness.Table) map[string]float64 {
		out := map[string]float64{}
		for _, row := range t.Rows {
			key := strings.ReplaceAll(strings.ToLower(row[1]), "-", "_") + "_improvement_x"
			out[key] = cellFloat(row[4])
		}
		return out
	})
}

// BenchmarkTable2_MonitoringOverhead regenerates Table II.
func BenchmarkTable2_MonitoringOverhead(b *testing.B) {
	runExperimentBench(b, "table2", func(t *harness.Table) map[string]float64 {
		worst := 0.0
		for _, row := range t.Rows {
			if v := cellFloat(row[3]); v > worst {
				worst = v
			}
		}
		return map[string]float64{"worst_overhead_pct": worst}
	})
}

// BenchmarkFig09_RepartitioningCost regenerates Figure 9.
func BenchmarkFig09_RepartitioningCost(b *testing.B) {
	runExperimentBench(b, "fig9", func(t *harness.Table) map[string]float64 {
		last := t.Rows[len(t.Rows)-1]
		return map[string]float64{
			"merge_ms_max": cellFloat(last[1]),
			"split_ms_max": cellFloat(last[2]),
		}
	})
}

// seriesMetrics summarizes a static-vs-ATraPos time series table.
func seriesMetrics(t *harness.Table) map[string]float64 {
	if len(t.Rows) == 0 {
		return nil
	}
	// Column 1 is "atrapos", column 2 is "static" (alphabetical order).
	avg := func(col int) float64 {
		total, n := 0.0, 0
		for _, row := range t.Rows {
			if v, err := strconv.ParseFloat(row[col], 64); err == nil && v > 0 {
				total += v
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return total / float64(n)
	}
	return map[string]float64{"atrapos_avg_tps": avg(1), "static_avg_tps": avg(2)}
}

// BenchmarkFig10_WorkloadChange regenerates Figure 10.
func BenchmarkFig10_WorkloadChange(b *testing.B) { runExperimentBench(b, "fig10", seriesMetrics) }

// BenchmarkFig11_Skew regenerates Figure 11.
func BenchmarkFig11_Skew(b *testing.B) { runExperimentBench(b, "fig11", seriesMetrics) }

// BenchmarkFig12_SocketFailure regenerates Figure 12.
func BenchmarkFig12_SocketFailure(b *testing.B) { runExperimentBench(b, "fig12", seriesMetrics) }

// BenchmarkFig13_FrequentChanges regenerates Figure 13.
func BenchmarkFig13_FrequentChanges(b *testing.B) { runExperimentBench(b, "fig13", seriesMetrics) }

// --- Ablation benches (DESIGN.md section 6) ---

// BenchmarkAblationTxnList compares centralized vs per-socket system state.
func BenchmarkAblationTxnList(b *testing.B) { runExperimentBench(b, "ablation-txnlist", nil) }

// BenchmarkAblationStateLock measures the centralized design as sockets grow.
func BenchmarkAblationStateLock(b *testing.B) { runExperimentBench(b, "ablation-statelock", nil) }

// BenchmarkAblationPlacement compares Algorithm 2 on vs off.
func BenchmarkAblationPlacement(b *testing.B) { runExperimentBench(b, "ablation-placement", nil) }

// BenchmarkAblationSubPartitions sweeps the monitoring sub-partition granularity.
func BenchmarkAblationSubPartitions(b *testing.B) {
	runExperimentBench(b, "ablation-subparts", nil)
}

// BenchmarkAblationSLI compares speculative lock inheritance on vs off.
func BenchmarkAblationSLI(b *testing.B) { runExperimentBench(b, "ablation-sli", nil) }

// --- Engine micro-benchmarks: per-transaction cost of each design ---

func benchDesign(b *testing.B, d Design) {
	wl := MustTATP(TATPOptions{Subscribers: 4000})
	top, err := NewTopology(4, 2)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := Open(Options{Design: d, Workload: wl, Topology: top})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i += 500 {
		n := 500
		if rem := b.N - i; rem < n {
			n = rem
		}
		res, err := sys.Run(RunOptions{Transactions: n, Seed: int64(i), Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if res.Committed == 0 {
			b.Fatal("no transactions committed")
		}
	}
}

// BenchmarkEngineCentralized measures the simulator's real (wall-clock) cost
// per simulated transaction for the centralized design on TATP.
func BenchmarkEngineCentralized(b *testing.B) { benchDesign(b, DesignCentralized) }

// BenchmarkEnginePLP measures the simulator cost for PLP on TATP.
func BenchmarkEnginePLP(b *testing.B) { benchDesign(b, DesignPLP) }

// BenchmarkEngineATraPos measures the simulator cost for ATraPos on TATP.
func BenchmarkEngineATraPos(b *testing.B) { benchDesign(b, DesignATraPos) }
