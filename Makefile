# Development workflow for the ATraPos reproduction.
#
#   make check        - everything CI runs: format, vet, build, test, race, bench smoke
#   make race         - concurrent-adaptation packages under the race detector
#   make bench        - full hot-path microbenchmarks with allocation stats
#   make bench-json   - append a BENCH.json perf-trajectory record

GO ?= go

.PHONY: check fmt vet build test race bench-smoke bench bench-json

check: fmt vet build test race bench-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages where the planner goroutine installs snapshots concurrently
# with executing workers; the concurrent-adaptation tests must stay clean
# under the race detector.
race:
	$(GO) test -race ./internal/engine ./internal/partition

# A short benchmark pass so hot-path regressions (time or allocations) fail
# loudly in review; see DESIGN.md section 7 for the invariants.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkExecute -benchtime 100x -benchmem ./internal/engine

bench:
	$(GO) test -run '^$$' -bench BenchmarkExecute -benchmem ./internal/engine

bench-json:
	$(GO) run ./cmd/atrapos-bench -json
