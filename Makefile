# Development workflow for the ATraPos reproduction.
#
#   make check        - everything CI runs: format, vet, static analysis, build,
#                       test, race, bench smoke, log-device smoke, group-commit
#                       smoke, executed-storage smoke, fault-scenario fuzz
#                       smoke, BENCH.json well-formedness
#   make race         - concurrent-adaptation packages under the race detector
#   make bench        - full hot-path microbenchmarks with allocation stats
#   make bench-json   - append a BENCH.json perf-trajectory record
#   make bench-trace  - traced adaptive-drift run: Perfetto trace + metrics CSV
#   make fuzz-smoke   - bounded seeded fault-scenario fuzz run (FUZZ_SEED=...)
#
# The experiment and fuzz targets run through the parallel point scheduler
# (atrapos-bench -parallel, default GOMAXPROCS); results are bit-identical at
# any concurrency, so only wall time varies across hosts.

GO ?= go
FUZZ_SEED ?= 42

.PHONY: check fmt vet staticcheck build test race bench-smoke bench bench-json bench-verify bench-devices bench-groupcommit bench-executed bench-trace fuzz-smoke

check: fmt vet staticcheck build test race bench-smoke bench-devices bench-groupcommit bench-executed bench-trace fuzz-smoke bench-verify

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Deeper static analysis when the tools are installed (CI installs them);
# environments without them fall back to the vet pass above so `make check`
# works offline with a stock toolchain.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; go vet (above) is the fallback"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping vulnerability scan"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages where the planner goroutine installs snapshots concurrently
# with executing workers, plus the harness pool's concurrent sweep/fuzz paths
# (point scheduling, the allocation-measurement token, parallel bit-identity);
# all of it must stay clean under the race detector. The harness pass filters
# to the pool tests so the race-slowed run stays bounded.
race:
	$(GO) test -race ./internal/engine ./internal/partition
	$(GO) test -race -run 'TestPool|TestPointWorkers|TestParallelSweepBitIdentical|TestFuzzShardDeterminism|TestMeasureParallel' ./internal/harness

# A short benchmark pass so hot-path regressions (time or allocations) fail
# loudly in review; see DESIGN.md section 7 for the invariants.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkExecute -benchtime 100x -benchmem ./internal/engine

bench:
	$(GO) test -run '^$$' -bench BenchmarkExecute -benchmem ./internal/engine

bench-json:
	$(GO) run ./cmd/atrapos-bench -json

# A tiny fig-log-devices run: the heterogeneous log-device sweep must keep
# producing its crossover table (the harness test asserts the shift; this
# smoke keeps the CLI path exercised).
bench-devices:
	$(GO) run ./cmd/atrapos-bench -experiment fig-log-devices

# The coalescing group-commit sweep: write-combining on/off across device
# layouts. The smoke keeps the experiment's crossover table producible from
# the CLI; the schema gates in -verify assert the coalescing wins.
bench-groupcommit:
	$(GO) run ./cmd/atrapos-bench -experiment fig-group-commit

# Executed storage mode: runs every island level in both priced (virtual
# time) and executed (real sharded hash backend, wall-clock) modes, fits the
# cost-model calibration, and asserts the fine-vs-coarse crossover direction
# agrees between the two on the chiplet profile.
bench-executed:
	$(GO) run ./cmd/atrapos-bench -experiment fig-executed

# The tracing smoke: run the traced adaptive-drift scenario and write the
# Chrome-trace JSON (Perfetto-loadable) and metrics CSV. The command validates
# both documents itself (trace-event schema, CSV header and row shape, span
# ring drop accounting), so this target failing means the exporter regressed.
# Outputs land in ./trace-out/ (gitignored; CI uploads them on failure).
bench-trace:
	@mkdir -p trace-out
	$(GO) run ./cmd/atrapos-bench -trace trace-out/drift.json -metrics trace-out/drift.csv

# A bounded, fixed-seed run of the fault-scenario fuzzer: 100 composed
# {workload, machine, device layout, fault schedule} scenarios, every standing
# invariant checked on each. Scenarios fan out across the point scheduler
# (verdicts are seed-derived, so concurrency never changes them); on a
# multi-core host the 100 finish in about the old 25-serial wall time.
# Deterministic per seed; override with `make fuzz-smoke FUZZ_SEED=1007` to
# sweep a different slice.
fuzz-smoke:
	$(GO) run ./cmd/atrapos-bench -fuzz 100 -seed $(FUZZ_SEED)

# BENCH.json is an appending trajectory; the schema gate keeps a bad append
# from corrupting it silently.
bench-verify:
	$(GO) run ./cmd/atrapos-bench -verify
