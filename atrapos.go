// Package atrapos is a from-scratch reproduction of "ATraPos: Adaptive
// Transaction Processing on Hardware Islands" (Porobic, Liarou, Tözün,
// Ailamaki — ICDE 2014) as a Go library.
//
// The library models a multisocket multicore server (hardware Islands),
// implements the storage-manager substrate the paper builds on (multi-rooted
// B-trees, hierarchical locking, Aether-style logging, transaction
// management), the system designs the paper compares (centralized
// shared-everything, extreme and coarse shared-nothing, PLP), and the paper's
// contribution: ATraPos' NUMA-aware system state plus its workload- and
// hardware-aware adaptive partitioning and placement mechanism.
//
// Because the Go runtime offers no NUMA placement control, hardware is
// simulated: workers are logically bound to the cores of an explicit topology
// model and every data-structure operation charges virtual time according to
// a NUMA cost model. Throughput is measured in virtual time, which makes the
// experiments deterministic in shape and machine independent. See DESIGN.md
// for the full substitution table.
//
// Typical use:
//
//	wl := atrapos.TATP(atrapos.TATPOptions{Subscribers: 100_000})
//	sys, err := atrapos.Open(atrapos.Options{
//		Design:   atrapos.DesignATraPos,
//		Workload: wl,
//		Adaptive: true,
//	})
//	if err != nil { ... }
//	res, err := sys.Run(atrapos.RunOptions{Transactions: 100_000})
//	fmt.Println(res.ThroughputTPS)
//
// The experiments of the paper's evaluation section are available through
// RunExperiment and the atrapos-bench command.
package atrapos

import (
	"fmt"

	"atrapos/internal/backend"
	"atrapos/internal/core"
	"atrapos/internal/device"
	"atrapos/internal/engine"
	"atrapos/internal/fault"
	"atrapos/internal/harness"
	"atrapos/internal/numa"
	"atrapos/internal/obs"
	"atrapos/internal/partition"
	"atrapos/internal/topology"
	"atrapos/internal/vclock"
	"atrapos/internal/workload"
)

// Design selects one of the system designs the paper compares.
type Design = engine.Design

// The supported system designs.
const (
	// DesignCentralized is the traditional centralized shared-everything design.
	DesignCentralized = engine.Centralized
	// DesignSharedNothingExtreme runs one logical instance per core.
	DesignSharedNothingExtreme = engine.SharedNothingExtreme
	// DesignSharedNothingCoarse runs one logical instance per socket.
	DesignSharedNothingCoarse = engine.SharedNothingCoarse
	// DesignPLP is physiological partitioning (the prior state of the art).
	DesignPLP = engine.PLP
	// DesignHWAware is PLP plus NUMA-aware system state with naïve placement.
	DesignHWAware = engine.HWAware
	// DesignATraPos is the paper's full design.
	DesignATraPos = engine.ATraPos
	// DesignSharedNothing is the parametric shared-nothing design: one
	// logical instance per hardware island at Options.IslandLevel. The
	// Extreme and Coarse designs are its fixed-granularity aliases.
	DesignSharedNothing = engine.SharedNothing
)

// Designs returns the paper's six configurations in presentation order.
// DesignSharedNothing is not listed separately: its core- and socket-grained
// fixed points appear as the Extreme and Coarse aliases; other granularities
// are reached through Options.IslandLevel or the fig-islands sweep.
func Designs() []Design { return engine.Designs() }

// Topology models a multisocket machine as a hierarchical island tree.
type Topology = topology.Topology

// TopologyConfig describes a machine to build, including its sub-socket
// (die/CCX) structure and per-level hop distances.
type TopologyConfig = topology.Config

// IslandLevel names one tier of the island hierarchy (core, die, socket,
// machine).
type IslandLevel = topology.Level

// The island granularities, finest to coarsest.
const (
	LevelCore    = topology.LevelCore
	LevelDie     = topology.LevelDie
	LevelSocket  = topology.LevelSocket
	LevelMachine = topology.LevelMachine
)

// ParseIslandLevel converts "core", "die", "socket" or "machine" to a level.
func ParseIslandLevel(s string) (IslandLevel, error) { return topology.ParseLevel(s) }

// MachineProfile is a named machine shape from the profile library.
type MachineProfile = topology.Profile

// Profiles returns the built-in machine profiles.
func Profiles() []MachineProfile { return topology.Profiles() }

// BuildProfile instantiates a named machine profile.
func BuildProfile(name string) (*Topology, error) { return topology.BuildProfile(name) }

// DefaultTopology returns the paper's 8-socket, 80-core machine.
func DefaultTopology() *Topology { return topology.Default() }

// NewTopology builds a machine with the given number of sockets and cores per
// socket, connected with a twisted-cube-like interconnect. For machines with
// sub-socket structure build from a TopologyConfig or a MachineProfile.
func NewTopology(sockets, coresPerSocket int) (*Topology, error) {
	return topology.New(topology.Config{Sockets: sockets, CoresPerSocket: coresPerSocket})
}

// NewTopologyFromConfig builds a machine from a full hierarchical description.
func NewTopologyFromConfig(cfg TopologyConfig) (*Topology, error) { return topology.New(cfg) }

// ParseNumactl builds a topology configuration from a real machine's
// `numactl --hardware` dump: per-node cpu lists become the socket layout and
// the SLIT distance table becomes the hop matrix.
func ParseNumactl(dump string) (TopologyConfig, error) { return topology.ParseNumactl(dump) }

// CostModel holds the NUMA latencies of the simulation.
type CostModel = numa.CostModel

// DefaultCostModel returns the calibrated cost model.
func DefaultCostModel() CostModel { return numa.DefaultCostModel() }

// AllocPolicy selects where shared-nothing instances allocate their memory.
type AllocPolicy = numa.AllocPolicy

// Memory allocation policies (Table I).
const (
	AllocLocal   = numa.AllocLocal
	AllocCentral = numa.AllocCentral
	AllocRemote  = numa.AllocRemote
)

// Workload couples a dataset with a transaction generator.
type Workload = workload.Workload

// TATPOptions configures the TATP benchmark.
type TATPOptions = workload.TATPOptions

// TPCCOptions configures the TPC-C benchmark.
type TPCCOptions = workload.TPCCOptions

// Skew describes a hot-set access skew.
type Skew = workload.Skew

// TATP builds the TATP telecom benchmark workload.
func TATP(opts TATPOptions) (*Workload, error) { return workload.TATP(opts) }

// TATPDriftingHotspot builds the continuous-drift adaptivity scenario: a hot
// window over the subscribers that slides to the next position every period.
func TATPDriftingHotspot(subscribers int, period VirtualTime) (*Workload, error) {
	return workload.TATPDriftingHotspot(subscribers, period)
}

// TATPSkewOscillation builds the skew-oscillation adaptivity scenario: the
// access distribution alternates between skewed and uniform every period.
func TATPSkewOscillation(subscribers int, period VirtualTime) (*Workload, error) {
	return workload.TATPSkewOscillation(subscribers, period)
}

// MustTATP is TATP but panics on configuration errors.
func MustTATP(opts TATPOptions) *Workload { return workload.MustTATP(opts) }

// TPCC builds the TPC-C wholesale supplier benchmark workload.
func TPCC(opts TPCCOptions) (*Workload, error) { return workload.TPCC(opts) }

// MustTPCC is TPCC but panics on configuration errors.
func MustTPCC(opts TPCCOptions) *Workload { return workload.MustTPCC(opts) }

// SingleRowRead returns the perfectly partitionable microbenchmark of the
// paper's Figures 1, 2 and 5.
func SingleRowRead(rows int) *Workload { return workload.SingleRowRead(rows) }

// MultisiteUpdate returns the microbenchmark of Figures 3 and 4 with the
// given percentage of multi-site transactions.
func MultisiteUpdate(rows, pctMultiSite int) *Workload {
	return workload.MultisiteUpdate(rows, pctMultiSite)
}

// TwoTableSimple returns the two-table transaction of Figure 6.
func TwoTableSimple(rows int) *Workload { return workload.TwoTableSimple(rows) }

// ReadHundred returns the remote-memory microbenchmark of Table I.
func ReadHundred(rows int) *Workload { return workload.ReadHundred(rows) }

// YCSBMix names one of the YCSB core mixes (A: 50/50 read/update,
// B: 95/5, C: read-only).
type YCSBMix = workload.YCSBMix

// The YCSB core mixes.
const (
	MixYCSBA = workload.YCSBA
	MixYCSBB = workload.YCSBB
	MixYCSBC = workload.YCSBC
)

// YCSB returns the named YCSB core mix: single-row reads and updates over a
// Zipf-skewed, site-local key distribution, perfectly partitionable at any
// island granularity.
func YCSB(rows int, mix YCSBMix) *Workload { return workload.YCSB(rows, mix) }

// Options configures a System.
type Options struct {
	// Design selects the system design; the default is DesignATraPos.
	Design Design
	// IslandLevel selects the instance granularity of DesignSharedNothing
	// (one logical instance per island at this level); the zero value means
	// socket-grained instances. Ignored by the other designs.
	IslandLevel IslandLevel
	// DeviceLayout optionally names a log-device layout (LogDeviceLayouts) to
	// instantiate on the machine: write-ahead logs are then bound to modeled
	// log devices and commits pay each device's service and queueing cost.
	// Empty means no device modeling.
	DeviceLayout string
	// Backend selects the storage backend: the zero value is the priced
	// virtual-time path; BackendHash adds the executed sharded hash engine
	// (shared-nothing designs only) and enables System.RunExecuted.
	Backend BackendKind
	// Workload supplies the dataset and transaction generator. Required.
	Workload *Workload
	// Topology models the machine; nil means the paper's 8-socket box.
	Topology *Topology
	// CostModel overrides the NUMA latencies; zero value means defaults.
	CostModel CostModel
	// Adaptive enables ATraPos monitoring and adaptive repartitioning.
	Adaptive bool
	// AdaptiveInterval tunes the monitoring interval controller; the zero
	// value uses the paper's parameters (1 s initial, 8 s maximum interval).
	AdaptiveInterval IntervalConfig
	// TimeCompression declares that the run compresses that many wall-clock
	// seconds of the modeled scenario into one virtual second; repartitioning
	// costs are scaled down accordingly. Zero or one means no compression.
	TimeCompression float64
	// Monitoring enables the monitoring mechanism without adaptation.
	Monitoring bool
	// Tracing enables the virtual-time span tracer: spans, planner decisions
	// and metrics samples are recorded into pre-allocated rings, exportable
	// via RunOptions.TracePath (Chrome trace-event JSON, Perfetto-loadable)
	// and RunOptions.MetricsPath (CSV). Off (the default), the hot paths pay
	// one nil check per recording site and allocate nothing extra.
	Tracing bool
	// AllocPolicy places instance memory for the shared-nothing designs.
	AllocPolicy AllocPolicy
	// WorkloadAwarePlacement derives the initial partitioning and placement
	// from the workload's static information (flow graphs and class mix)
	// using the paper's Algorithms 1 and 2; it applies to DesignATraPos and
	// defaults to true.
	WorkloadAwarePlacement *bool
}

// System is an instantiated storage manager plus execution engine.
type System struct {
	engine *engine.Engine
}

// Open builds and loads a System according to opts.
func Open(opts Options) (*System, error) {
	if opts.Workload == nil {
		return nil, fmt.Errorf("atrapos: Options.Workload is required")
	}
	top := opts.Topology
	if top == nil {
		top = topology.Default()
	}
	cfg := engine.Config{
		Design:           opts.Design,
		IslandLevel:      opts.IslandLevel,
		DeviceLayout:     opts.DeviceLayout,
		Backend:          opts.Backend,
		Workload:         opts.Workload,
		Topology:         top,
		CostModel:        opts.CostModel,
		Adaptive:         opts.Adaptive,
		AdaptiveInterval: opts.AdaptiveInterval,
		TimeCompression:  opts.TimeCompression,
		Monitoring:       opts.Monitoring || opts.Adaptive,
		AllocPolicy:      opts.AllocPolicy,
		Tracing:          opts.Tracing,
	}
	wap := true
	if opts.WorkloadAwarePlacement != nil {
		wap = *opts.WorkloadAwarePlacement
	}
	if opts.Design == engine.ATraPos && wap {
		cfg.Placement = engine.DerivePlacement(opts.Workload, top, true)
	}
	e, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	return &System{engine: e}, nil
}

// RunOptions controls one run of a System.
type RunOptions = engine.RunOptions

// Result is the outcome of a run.
type Result = engine.Result

// RepartitionDiff summarizes one adaptive repartitioning event: how much of
// the placement it touched and how much of the previous runtime it reused.
type RepartitionDiff = engine.RepartitionDiff

// GranularityChange records one online island-level change of the adaptive
// parametric shared-nothing design: when the planner re-wired the machine,
// between which levels, at what measured multisite share, and how much of the
// previous layout (logs, lock tables) the re-wiring reused.
type GranularityChange = engine.GranularityChange

// Event is an environment change scheduled at a point of virtual time.
type Event = engine.Event

// FailSocketAt returns an Event that simulates the failure of the given
// socket once the run's virtual time passes at (the Figure 12 scenario).
func FailSocketAt(at VirtualTime, socket int) Event {
	return Event{At: at, Do: func(e *engine.Engine) { _ = e.FailSocket(topology.SocketID(socket)) }}
}

// RestoreSocketAt returns an Event that returns a failed socket to service
// once the run's virtual time passes at — the elastic half of the Figure 12
// scenario: the adaptive planner re-expands onto the restored capacity.
func RestoreSocketAt(at VirtualTime, socket int) Event {
	return Event{At: at, Do: func(e *engine.Engine) { _ = e.RestoreSocket(topology.SocketID(socket)) }}
}

// Run executes the workload and returns the measured result.
func (s *System) Run(opts RunOptions) (*Result, error) { return s.engine.Run(opts) }

// Tracer is the span, decision and metrics recorder of a traced System.
type Tracer = obs.Tracer

// Tracer returns the System's tracer, or nil unless Options.Tracing was set.
// Besides the file exports of RunOptions, it gives programmatic access to the
// recorded spans, planner decisions, metrics samples and drop accounting.
func (s *System) Tracer() *Tracer { return s.engine.Tracer() }

// ExecutedResult is the outcome of a RunExecuted: real operations on the
// sharded hash backend, timed in wall nanoseconds.
type ExecutedResult = engine.ExecutedResult

// RunExecuted executes the workload on the executed hash backend (requires
// Options.Backend == BackendHash) with one OS-thread-pinned executor per
// island, and returns wall-clock-measured results. The transaction stream is
// the same deterministic stream Run generates for the same seed.
func (s *System) RunExecuted(opts RunOptions) (*ExecutedResult, error) {
	return s.engine.RunExecuted(opts)
}

// Design returns the system's design.
func (s *System) Design() Design { return s.engine.Design() }

// Topology returns the modeled machine.
func (s *System) Topology() *Topology { return s.engine.Topology() }

// Placement returns a copy of the current partitioning and placement.
func (s *System) Placement() *partition.Placement { return s.engine.Placement() }

// FailSocket simulates a processor failure.
func (s *System) FailSocket(socket int) error {
	return s.engine.FailSocket(topology.SocketID(socket))
}

// RestoreSocket returns a failed socket to service, mirroring FailSocket. It
// errors on an unknown or already-alive socket.
func (s *System) RestoreSocket(socket int) error {
	return s.engine.RestoreSocket(topology.SocketID(socket))
}

// FailDevice marks log device i failed; the planner re-homes the island logs
// bound to it onto surviving devices, preserving their records.
func (s *System) FailDevice(i int) error { return s.engine.FailDevice(i) }

// RestoreDevice clears the failed mark on log device i.
func (s *System) RestoreDevice(i int) error { return s.engine.RestoreDevice(i) }

// DegradeDevice multiplies log device i's service time by factor (>= 1);
// factor 1 restores full speed.
func (s *System) DegradeDevice(i int, factor float64) error {
	return s.engine.DegradeDevice(i, factor)
}

// VirtualTime is a span of virtual time in nanoseconds; throughput and the
// adaptivity experiments are measured against it.
type VirtualTime = vclock.Nanos

// Seconds converts seconds to VirtualTime.
func Seconds(s float64) VirtualTime { return workload.Seconds(s) }

// IntervalConfig tunes the adaptive monitoring interval controller.
type IntervalConfig = core.IntervalConfig

// DefaultIntervalConfig returns the paper's controller parameters
// (1 s initial interval, 8 s maximum, 10% threshold, 5-sample history).
func DefaultIntervalConfig() IntervalConfig { return core.DefaultIntervalConfig() }

// Scale controls how large the reproduction experiments run.
type Scale = harness.Scale

// QuickScale returns a scale that runs every experiment in seconds.
func QuickScale() Scale { return harness.QuickScale() }

// PaperScale returns the paper's experimental scale.
func PaperScale() Scale { return harness.PaperScale() }

// ExperimentTable is the rendered result of one experiment.
type ExperimentTable = harness.Table

// Experiments lists the ids of every reproducible table and figure.
func Experiments() []string { return harness.IDs() }

// RunExperiment reproduces one of the paper's tables or figures by id
// (e.g. "fig2", "table1").
func RunExperiment(id string, scale Scale) (*ExperimentTable, error) {
	if err := scale.Validate(); err != nil {
		return nil, err
	}
	exp, ok := harness.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("atrapos: unknown experiment %q (known: %v)", id, harness.IDs())
	}
	return exp.Run(scale)
}

// RunAllExperiments reproduces every table and figure at the given scale.
func RunAllExperiments(scale Scale) ([]*ExperimentTable, error) {
	return harness.RunAll(scale)
}

// ExperimentResult is one registry experiment's outcome from a timed run:
// its rendered table, its wall time, and its error if it failed. Results
// stay in registry order regardless of Scale.Parallel.
type ExperimentResult = harness.ExperimentResult

// RunAllExperimentsTimed reproduces every table and figure at the given
// scale, fanning independent experiments across Scale.Parallel goroutines,
// and returns per-experiment results in registry order. A failed experiment
// does not abort the rest; the returned error joins every failure.
func RunAllExperimentsTimed(scale Scale) ([]ExperimentResult, error) {
	return harness.RunAllTimed(scale)
}

// ParallelReport is the measured outcome of the parallel-harness determinism
// check: wall times of a serial and a pooled pass over the same sweep, the
// speedup, and whether the two produced bit-identical results.
type ParallelReport = harness.ParallelReport

// MeasureParallel runs the island sweep once serially and once through the
// parallel point scheduler at scale.Parallel concurrency (defaulting to
// GOMAXPROCS), asserts the two passes agree point for point, and reports the
// wall times; it is the data behind the BENCH.json harness_parallel record.
func MeasureParallel(scale Scale) (*ParallelReport, error) {
	return harness.MeasureParallel(scale)
}

// IslandPoint is one measured cell of the island-granularity sweep.
type IslandPoint = harness.IslandPoint

// IslandSweep measures the parametric shared-nothing design at every island
// granularity on every sweep profile for the given multisite percentages; it
// is the data behind the fig-islands experiment and the BENCH.json islands
// records.
func IslandSweep(scale Scale, pcts []int) ([]IslandPoint, error) {
	return harness.IslandSweep(scale, pcts)
}

// LogDeviceLayout is a named storage shape: the class and count of the log
// devices a machine flushes its write-ahead logs to.
type LogDeviceLayout = device.Layout

// LogDeviceLayouts returns the built-in log-device layouts, most parallel
// first (one NVMe per socket, a shared device per die pair, a single
// SATA-class device).
func LogDeviceLayouts() []LogDeviceLayout { return device.Layouts() }

// DevicePoint is one measured cell of the log-device sweep.
type DevicePoint = harness.DevicePoint

// DeviceSweep measures the parametric shared-nothing design at every island
// granularity under every log-device layout for the given multisite
// percentages; it is the data behind the fig-log-devices experiment and the
// BENCH.json log-device records.
func DeviceSweep(scale Scale, pcts []int) ([]DevicePoint, error) {
	return harness.DeviceSweep(scale, pcts)
}

// GroupCommitPoint is one measured cell of the coalescing group-commit
// sweep: an island granularity under one device layout with the
// write-combining accumulator on or off, with the logical-vs-physical log
// split the run produced.
type GroupCommitPoint = harness.GroupCommitPoint

// GroupCommitSweep measures the parametric shared-nothing design on the
// zipf-hotkey workload with the write-combining WAL accumulator on and off,
// across device layouts and island levels; it is the data behind the
// fig-group-commit experiment and the BENCH.json group-commit records.
func GroupCommitSweep(scale Scale) ([]GroupCommitPoint, error) {
	return harness.GroupCommitSweep(scale)
}

// GranularityTrajectory is the measured outcome of the adaptive-granularity
// scenario: how the planner re-wired the machine as the multisite share
// drifted across the island-size crossover, and whether it tracked the
// statically-best level on either side.
type GranularityTrajectory = harness.GranularityTrajectory

// GranularityChangeRecord is one island-level change of a trajectory, with
// the scorer's winner and runner-up per-term breakdowns when recorded.
type GranularityChangeRecord = harness.GranularityChangeRecord

// ScoreTermsRecord is the granularity scorer's per-term breakdown for one
// candidate level: five additive terms whose sum is the total (lower wins).
type ScoreTermsRecord = harness.ScoreTermsRecord

// RunAdaptiveGranularity runs the adaptive-granularity scenario behind the
// fig-adaptive-granularity experiment and returns its trajectory; it is the
// data behind the BENCH.json adaptive-granularity records.
func RunAdaptiveGranularity(scale Scale) (*GranularityTrajectory, error) {
	return harness.RunAdaptiveGranularity(scale)
}

// RunAdaptiveGranularityFrom is RunAdaptiveGranularity with precomputed
// island-sweep points: phases whose static winner is covered by the points
// are not re-measured.
func RunAdaptiveGranularityFrom(scale Scale, static []IslandPoint) (*GranularityTrajectory, error) {
	return harness.RunAdaptiveGranularityFrom(scale, static)
}

// TracedDriftResult is the outcome of RunTracedDrift: the level trajectory
// plus the exported trace and metrics documents and their accounting.
type TracedDriftResult = harness.TracedDriftResult

// RunTracedDrift executes the adaptive-granularity drift scenario with the
// span tracer enabled (default profile chiplet-2s4d, one worker, so the
// exported documents are bit-identical on any host at any parallelism) and
// writes the Chrome-trace JSON and metrics CSV to the given paths when
// non-empty. Both documents are validated before the result is returned.
func RunTracedDrift(scale Scale, tracePath, metricsPath string) (*TracedDriftResult, error) {
	return harness.RunTracedDrift(scale, tracePath, metricsPath)
}

// FaultEvent is one declarative fault of a schedule: a socket or log-device
// failure, a device degradation, a socket restore, or a crash-recovery drill,
// at a point of virtual time.
type FaultEvent = fault.Event

// FaultMachine describes the hardware a fault schedule targets, so schedules
// validate at construction, before any engine exists.
type FaultMachine = fault.Machine

// FaultSchedule is a validated, time-ordered fault schedule; attach one to a
// run via RunOptions.Faults. Fault-free runs (nil schedule) are untouched.
type FaultSchedule = fault.Schedule

// NewFaultSchedule validates the events against the machine descriptor and
// their own history (no failing the failed, no restoring the alive, always
// one alive socket and device) and returns the schedule.
func NewFaultSchedule(m FaultMachine, events ...FaultEvent) (*FaultSchedule, error) {
	return fault.NewSchedule(m, events...)
}

// FailSocketFault schedules a socket failure at virtual time at.
func FailSocketFault(at VirtualTime, socket int) FaultEvent {
	return fault.FailSocket(at, topology.SocketID(socket))
}

// RestoreSocketFault schedules a failed socket's return at virtual time at.
func RestoreSocketFault(at VirtualTime, socket int) FaultEvent {
	return fault.RestoreSocket(at, topology.SocketID(socket))
}

// FailDeviceFault schedules a log-device failure at virtual time at.
func FailDeviceFault(at VirtualTime, dev int) FaultEvent {
	return fault.FailDevice(at, dev)
}

// DegradeDeviceFault schedules a log-device slowdown by latencyFactor (>= 1;
// 1 restores full speed) at virtual time at.
func DegradeDeviceFault(at VirtualTime, dev int, latencyFactor float64) FaultEvent {
	return fault.DegradeDevice(at, dev, latencyFactor)
}

// CrashAndRecoverFault schedules a crash drill at virtual time at: volatile
// state covered by the write-ahead logs is dropped and recovery replays the
// retained records before the run continues.
func CrashAndRecoverFault(at VirtualTime) FaultEvent {
	return fault.CrashAndRecover(at)
}

// FaultTimeline is the measured outcome of the fig-faults scenario: per-phase
// throughput across a fail→degrade→restore schedule, with the dips, the
// recovery, the re-homed island logs and the wiring convergence asserted.
type FaultTimeline = harness.FaultTimeline

// RunFaultTimeline runs the fig-faults scenario; it is the data behind the
// BENCH.json faults record.
func RunFaultTimeline(scale Scale) (*FaultTimeline, error) {
	return harness.RunFaultTimeline(scale)
}

// BackendKind selects the storage backend of a shared-nothing engine: the
// priced (virtual-time) path, or the executed sharded hash engine measured in
// real wall time.
type BackendKind = backend.Kind

// The storage backends.
const (
	// BackendPriced is the default virtual-time storage path.
	BackendPriced = backend.Priced
	// BackendHash is the executed storage mode: a Bitcask-style sharded hash
	// engine with one single-owner shard, value log and OS-thread-pinned
	// executor per island.
	BackendHash = backend.Hash
)

// ExecutedPoint is one measured cell of the executed-storage sweep, in either
// mode ("priced" or "executed").
type ExecutedPoint = harness.ExecutedPoint

// ExecutedProfileReport is one machine profile's calibration verdict: the
// priced model's level-ranking correlation against real execution before and
// after fitting per-component correction factors.
type ExecutedProfileReport = harness.ExecutedProfileReport

// ExecutedReport is the full executed-storage sweep: every point in both
// modes, the per-profile calibrations, and the crossover-direction agreement
// on the chiplet machine.
type ExecutedReport = harness.ExecutedReport

// ExecutedSweep runs the islands grid in both storage modes and fits the
// measured-vs-priced calibration; it is the data behind the fig-executed
// experiment and the BENCH.json executed_storage record.
func ExecutedSweep(scale Scale) (*ExecutedReport, error) {
	return harness.ExecutedSweep(scale)
}

// CostCalibration holds per-component correction factors fitted from
// executed-vs-priced runs; apply them to a GranularityModel or derive a
// scaled CostModel from them.
type CostCalibration = core.Calibration

// FitCostCalibration fits correction factors from paired per-component time
// totals (measured wall nanoseconds vs priced virtual nanoseconds).
func FitCostCalibration(measured, priced [vclock.NumComponents]int64) *CostCalibration {
	return core.FitCalibration(measured, priced)
}

// FuzzOptions configures the invariant-checking scenario fuzzer.
type FuzzOptions = harness.FuzzOptions

// FuzzReport summarizes a fuzzer run; FuzzFailure carries one violated
// scenario with its minimal reproducer.
type (
	FuzzReport  = harness.FuzzReport
	FuzzFailure = harness.FuzzFailure
)

// FuzzScenarios composes seeded random {workload, machine profile, device
// layout, fault schedule} scenarios and checks the standing invariants on
// every one: the system keeps committing under faults, no site lands on dead
// hardware or a failed device, the planner converges, committed state
// survives a crash drill, and the steady state stays allocation-free.
func FuzzScenarios(opts FuzzOptions) (*FuzzReport, error) {
	return harness.FuzzScenarios(opts)
}
