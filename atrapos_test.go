package atrapos

import (
	"strings"
	"testing"
)

func smallTop(t *testing.T) *Topology {
	t.Helper()
	top, err := NewTopology(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Error("Open without a workload should fail")
	}
	if _, err := NewTopology(0, 1); err == nil {
		t.Error("invalid topology should fail")
	}
	if DefaultTopology().Sockets() != 8 {
		t.Error("default topology should have 8 sockets")
	}
	if err := DefaultCostModel().Validate(); err != nil {
		t.Error(err)
	}
	if len(Designs()) != 6 {
		t.Errorf("Designs() = %v", Designs())
	}
	if DefaultIntervalConfig().History != 5 {
		t.Error("unexpected default interval config")
	}
}

func TestOpenAndRunEveryDesign(t *testing.T) {
	wl := SingleRowRead(2000)
	for _, d := range Designs() {
		sys, err := Open(Options{Design: d, Workload: wl, Topology: smallTop(t)})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if sys.Design() != d || sys.Topology() == nil {
			t.Errorf("%v: accessor mismatch", d)
		}
		res, err := sys.Run(RunOptions{Transactions: 300, Seed: 1, Workers: 4})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if res.Committed == 0 || res.ThroughputTPS <= 0 {
			t.Errorf("%v: empty result", d)
		}
		if err := sys.Placement().Validate(); err != nil {
			t.Errorf("%v: invalid placement: %v", d, err)
		}
	}
}

func TestWorkloadConstructors(t *testing.T) {
	if _, err := TATP(TATPOptions{}); err == nil {
		t.Error("TATP with zero subscribers should fail")
	}
	if _, err := TPCC(TPCCOptions{}); err == nil {
		t.Error("TPCC with zero warehouses should fail")
	}
	if MustTATP(TATPOptions{Subscribers: 100}).Name != "TATP" {
		t.Error("unexpected TATP name")
	}
	if MustTPCC(TPCCOptions{Warehouses: 1, CustomersPerDistrict: 10, Items: 100}).Name != "TPC-C" {
		t.Error("unexpected TPC-C name")
	}
	if len(MultisiteUpdate(100, 50).Tables) != 1 || len(TwoTableSimple(100).Tables) != 2 {
		t.Error("microbenchmark table counts wrong")
	}
	if ReadHundred(100).Name == "" {
		t.Error("ReadHundred has no name")
	}
	if Seconds(2) != 2_000_000_000 {
		t.Error("Seconds conversion wrong")
	}
}

func TestAdaptiveSystemAndFailSocket(t *testing.T) {
	wl := MustTATP(TATPOptions{Subscribers: 2000, Mix: map[string]float64{"GetSubData": 1}})
	sys, err := Open(Options{Design: DesignATraPos, Workload: wl, Topology: smallTop(t), Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.FailSocket(3); err != nil {
		t.Fatal(err)
	}
	if err := sys.FailSocket(99); err == nil {
		t.Error("failing an unknown socket should error")
	}
	res, err := sys.Run(RunOptions{Transactions: 500, Seed: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed < 450 {
		t.Errorf("committed %d of 500", res.Committed)
	}
}

func TestWorkloadAwarePlacementToggle(t *testing.T) {
	wl := TwoTableSimple(2000)
	off := false
	naive, err := Open(Options{Design: DesignATraPos, Workload: wl, Topology: smallTop(t), WorkloadAwarePlacement: &off})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Open(Options{Design: DesignATraPos, Workload: wl, Topology: smallTop(t)})
	if err != nil {
		t.Fatal(err)
	}
	// The naive placement has one partition of each table per core (16
	// partitions on the 8-core machine); the workload-aware placement has
	// roughly one partition per core in total.
	if naive.Placement().TotalPartitions() <= aware.Placement().TotalPartitions() {
		t.Errorf("naive placement should have more partitions: %d vs %d",
			naive.Placement().TotalPartitions(), aware.Placement().TotalPartitions())
	}
}

func TestExperimentsAPI(t *testing.T) {
	ids := Experiments()
	if len(ids) < 15 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	if _, err := RunExperiment("nope", QuickScale()); err == nil {
		t.Error("unknown experiment should fail")
	}
	scale := QuickScale()
	scale.MicroRows = 2000
	scale.Transactions = 300
	scale.CoresPerSocket = 2
	tbl, err := RunExperiment("fig7", scale)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "NewOrder") {
		t.Error("fig7 table should mention NewOrder")
	}
	tbl, err = RunExperiment("fig6", scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Errorf("fig6 has %d rows", len(tbl.Rows))
	}
	if PaperScale().Subscribers != 800_000 {
		t.Error("paper scale should use 800K subscribers")
	}
}
