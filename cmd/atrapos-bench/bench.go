package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"atrapos"
)

// DesignRecord is the measured hot-path profile of one design.
type DesignRecord struct {
	Design string `json:"design"`
	// Transactions is the number of measured transactions.
	Transactions int64 `json:"transactions"`
	// WallNanos is the host wall-clock time of the measured run.
	WallNanos int64 `json:"wall_nanos"`
	// WallTxnPerSec is how many simulated transactions the simulator itself
	// executes per host second: the number the hot-path work optimizes.
	WallTxnPerSec float64 `json:"wall_txn_per_sec"`
	// AllocsPerTxn is the average number of heap allocations per transaction
	// on the steady-state path (measured over the whole run, so per-run setup
	// is amortized; the partitioned designs must stay ~0).
	AllocsPerTxn float64 `json:"allocs_per_txn"`
	// BytesPerTxn is the average number of heap bytes per transaction.
	BytesPerTxn float64 `json:"bytes_per_txn"`
	// VirtualTPS is the modeled throughput of the design (virtual time),
	// recorded so a hot-path change that accidentally shifts the simulated
	// results is visible in the same file.
	VirtualTPS float64 `json:"virtual_tps"`
	Committed  int64   `json:"committed"`
	Aborted    int64   `json:"aborted"`
	// Repartitions and RepartitionDiffs record the adaptive pipeline's
	// activity during the measured run (adaptive designs only): how often it
	// repartitioned and how large each diff was.
	Repartitions     int64        `json:"repartitions,omitempty"`
	RepartitionDiffs []DiffRecord `json:"repartition_diffs,omitempty"`
	// AdaptationCostShare is the fraction of total core busy time spent on
	// migration pauses.
	AdaptationCostShare float64 `json:"adaptation_cost_share,omitempty"`
}

// DiffRecord is the per-repartitioning diff size: how much of the placement
// one adaptation touched and how much runtime state it reused.
type DiffRecord struct {
	ChangedTables    int `json:"changed_tables"`
	UnchangedTables  int `json:"unchanged_tables"`
	MovedPartitions  int `json:"moved_partitions"`
	ReusedLockTables int `json:"reused_lock_tables"`
	AffectedCores    int `json:"affected_cores"`
}

// BenchRecord is the BENCH.json document: one perf trajectory point.
type BenchRecord struct {
	GeneratedAt  string         `json:"generated_at"`
	GoVersion    string         `json:"go_version"`
	GOMAXPROCS   int            `json:"gomaxprocs"`
	Workers      int            `json:"workers"`
	Seed         int64          `json:"seed"`
	Transactions int            `json:"transactions"`
	Workload     string         `json:"workload"`
	Topology     string         `json:"topology"`
	Designs      []DesignRecord `json:"designs"`
	// Islands records the island-granularity sweep (fig-islands at bench
	// scale): the parametric shared-nothing design per machine profile,
	// island level and multisite probability, so granularity crossovers are
	// tracked commit over commit alongside the hot-path numbers.
	Islands []atrapos.IslandPoint `json:"islands,omitempty"`
	// AdaptiveGranularity records the fig-adaptive-granularity trajectory:
	// the island-level changes the planner executed as the multisite share
	// drifted across the crossover, and whether it tracked the statically
	// best level on either side.
	AdaptiveGranularity *atrapos.GranularityTrajectory `json:"adaptive_granularity,omitempty"`
	// LogDevices records the log-device sweep (fig-log-devices at bench
	// scale): the shared-nothing design per log-device layout, island level
	// and multisite probability, so the crossover's movement with the storage
	// profile is tracked commit over commit.
	LogDevices []atrapos.DevicePoint `json:"log_devices,omitempty"`
	// GroupCommit records the coalescing group-commit sweep
	// (fig-group-commit at bench scale): the shared-nothing design on the
	// zipf-hotkey workload with the write-combining WAL accumulator on and
	// off per device layout and island level, so the logical-vs-physical
	// split and the coalescing win on scarce devices are tracked commit over
	// commit.
	GroupCommit []atrapos.GroupCommitPoint `json:"group_commit,omitempty"`
	// Faults records the fig-faults timeline: per-phase throughput of the
	// adaptive shared-nothing design under the fail→degrade→restore fault
	// schedule, with the dips, the recovery and the re-homed island logs
	// asserted, so robustness under hardware faults is tracked commit over
	// commit.
	Faults *atrapos.FaultTimeline `json:"faults,omitempty"`
	// HarnessParallel records the parallel-harness determinism check: the
	// island sweep measured once serially and once through the point
	// scheduler, with wall times, speedup and the bit-identity verdict, so a
	// scheduling change that alters results (or loses the speedup) shows up
	// in the trajectory.
	HarnessParallel *atrapos.ParallelReport `json:"harness_parallel,omitempty"`
	// ExecutedStorage records the executed-storage sweep (fig-executed at
	// bench scale): the islands grid measured both by the priced cost model
	// and by real execution on the sharded hash backend, the per-profile
	// rank correlations before and after cost-model calibration, and the
	// crossover-direction agreement on the chiplet machine.
	ExecutedStorage *atrapos.ExecutedReport `json:"executed_storage,omitempty"`
}

// runBenchJSON measures every design's transaction hot path on the TATP mix
// and writes the result to path. The measurement intentionally bypasses the
// experiment harness: it calls System.Run directly so the recorded numbers
// are the per-transaction simulator cost, comparable across commits. A
// non-empty profile pins the hot-path machine (and the islands sweep) to the
// named machine profile instead of the default 4x2 box.
func runBenchJSON(path string, txns int, workers int, seed int64, profile string, parallel int) error {
	if txns < 4 {
		return fmt.Errorf("-txns must be at least 4, got %d", txns)
	}
	const subscribers = 4000
	top, err := atrapos.NewTopology(4, 2)
	if err != nil {
		return err
	}
	if profile != "" {
		if top, err = atrapos.BuildProfile(profile); err != nil {
			return err
		}
	}
	rec := BenchRecord{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Workers:      workers,
		Seed:         seed,
		Transactions: txns,
		Workload:     "TATP",
		Topology:     top.String(),
	}
	for _, d := range atrapos.Designs() {
		wl, err := atrapos.TATP(atrapos.TATPOptions{Subscribers: subscribers})
		if err != nil {
			return err
		}
		opts := atrapos.Options{Design: d, Workload: wl, Topology: top}
		if d == atrapos.DesignATraPos {
			opts.Adaptive = true
		}
		sys, err := atrapos.Open(opts)
		if err != nil {
			return fmt.Errorf("%v: %w", d, err)
		}
		// Warm up the reusable buffers, pools and caches.
		if _, err := sys.Run(atrapos.RunOptions{Transactions: txns / 4, Seed: seed, Workers: workers}); err != nil {
			return fmt.Errorf("%v warmup: %w", d, err)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := sys.Run(atrapos.RunOptions{Transactions: txns, Seed: seed + 1, Workers: workers})
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return fmt.Errorf("%v: %w", d, err)
		}
		n := res.Committed + res.Aborted
		dr := DesignRecord{
			Design:       d.String(),
			Transactions: n,
			WallNanos:    wall.Nanoseconds(),
			VirtualTPS:   res.ThroughputTPS,
			Committed:    res.Committed,
			Aborted:      res.Aborted,
		}
		if n > 0 {
			dr.AllocsPerTxn = float64(after.Mallocs-before.Mallocs) / float64(n)
			dr.BytesPerTxn = float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
		}
		if wall > 0 {
			dr.WallTxnPerSec = float64(n) / wall.Seconds()
		}
		dr.Repartitions = res.Repartitions
		dr.AdaptationCostShare = res.AdaptationCostShare
		for _, d := range res.RepartitionDiffs {
			dr.RepartitionDiffs = append(dr.RepartitionDiffs, DiffRecord{
				ChangedTables:    d.ChangedTables,
				UnchangedTables:  d.UnchangedTables,
				MovedPartitions:  d.MovedPartitions,
				ReusedLockTables: d.ReusedLockTables,
				AffectedCores:    d.AffectedCores,
			})
		}
		rec.Designs = append(rec.Designs, dr)
	}
	// One extra point exercises the incremental adaptation pipeline: the
	// drifting-hotspot scenario keeps the planner repartitioning, so the
	// recorded diff sizes show how much of each migration was incremental
	// (unchanged tables, reused lock tables) commit over commit.
	driftRec, err := runDriftRecord(subscribers, top, txns, workers, seed)
	if err != nil {
		return err
	}
	rec.Designs = append(rec.Designs, driftRec)
	// The island-granularity sweep: the endpoints of the multisite axis on
	// each sweep profile are enough to track the crossover per commit.
	islandScale := atrapos.QuickScale()
	islandScale.Seed = seed
	islandScale.Workers = workers
	islandScale.Transactions = txns / 4
	islandScale.Profile = profile
	rec.Islands, err = atrapos.IslandSweep(islandScale, []int{0, 50, 100})
	if err != nil {
		return err
	}
	// The adaptive-granularity trajectory: the planner re-wiring the machine
	// as the multisite share drifts across the crossover, recorded so the
	// convergence behaviour is tracked commit over commit. The static
	// winners come from the island sweep just measured above.
	rec.AdaptiveGranularity, err = atrapos.RunAdaptiveGranularityFrom(islandScale, rec.Islands)
	if err != nil {
		return err
	}
	// The log-device sweep: the multisite endpoints per storage shape are
	// enough to track how the granularity crossover moves with device count.
	rec.LogDevices, err = atrapos.DeviceSweep(islandScale, []int{0, 100})
	if err != nil {
		return err
	}
	// The coalescing group-commit sweep: write-combining on/off per device
	// layout and island level on the zipf-hotkey workload, so the net-delta
	// collapse ratio and the single-device coalescing win are tracked.
	rec.GroupCommit, err = atrapos.GroupCommitSweep(islandScale)
	if err != nil {
		return err
	}
	// The fault timeline: dips and recovery across the fail→degrade→restore
	// schedule, so a regression in re-homing or elastic recovery shows up in
	// the trajectory.
	rec.Faults, err = atrapos.RunFaultTimeline(islandScale)
	if err != nil {
		return err
	}
	// The parallel-harness determinism check: serial vs pooled island sweep,
	// bit-identity asserted, wall times recorded. On a single-core host the
	// pool degrades to concurrency 1 and the speedup hovers around 1.
	parScale := islandScale
	parScale.Parallel = parallel
	rec.HarnessParallel, err = atrapos.MeasureParallel(parScale)
	if err != nil {
		return err
	}
	// The executed-storage sweep: the islands grid in both modes with the
	// measured-vs-priced calibration, so the cost model's level ranking stays
	// anchored to real execution commit over commit.
	rec.ExecutedStorage, err = atrapos.ExecutedSweep(islandScale)
	if err != nil {
		return err
	}
	records, err := appendTrajectory(path, rec)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	// Validate the document before it replaces the trajectory, and swap it in
	// atomically: a malformed or half-written record can never corrupt the
	// committed BENCH.json.
	if err := checkBenchDocument(out); err != nil {
		return fmt.Errorf("bench: refusing to write malformed trajectory: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d trajectory point(s)); latest:\n", path, len(records))
	latest, _ := json.MarshalIndent(rec, "", "  ")
	fmt.Printf("%s\n", latest)
	return nil
}

// checkBenchDocument validates a BENCH.json document: a JSON array of
// trajectory records matching the BenchRecord schema exactly (unknown fields
// are rejected), each carrying a timestamp and at least one design record
// with sane counters. It is the well-formedness gate behind -verify and the
// pre-write check of -json.
func checkBenchDocument(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var records []BenchRecord
	if err := dec.Decode(&records); err != nil {
		return fmt.Errorf("not a BenchRecord array: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("trailing data after the record array")
	}
	if len(records) == 0 {
		return fmt.Errorf("empty trajectory")
	}
	for i, r := range records {
		if r.GeneratedAt == "" {
			return fmt.Errorf("record %d has no generated_at timestamp", i)
		}
		if len(r.Designs) == 0 {
			return fmt.Errorf("record %d has no design records", i)
		}
		for _, d := range r.Designs {
			if d.Design == "" {
				return fmt.Errorf("record %d has a design record without a name", i)
			}
			if d.Transactions < 0 || d.Committed < 0 || d.Aborted < 0 {
				return fmt.Errorf("record %d design %s has negative counters", i, d.Design)
			}
		}
		if g := r.AdaptiveGranularity; g != nil {
			if g.Profile == "" || g.FinalLevel == "" {
				return fmt.Errorf("record %d adaptive-granularity trajectory is missing its profile or final level", i)
			}
			for _, lc := range g.Changes {
				if err := checkScoreTerms(lc.WinnerScores, "winner"); err != nil {
					return fmt.Errorf("record %d level change %s->%s: %w", i, lc.From, lc.To, err)
				}
				if err := checkScoreTerms(lc.RunnerUpScores, "runner-up"); err != nil {
					return fmt.Errorf("record %d level change %s->%s: %w", i, lc.From, lc.To, err)
				}
				if w := lc.WinnerScores; w != nil {
					if w.Level != lc.To {
						return fmt.Errorf("record %d level change %s->%s: winner breakdown prices %q, not the level switched to",
							i, lc.From, lc.To, w.Level)
					}
					// The winner is the minimum of the scored candidates: a
					// runner-up strictly cheaper than it is a corrupt record.
					if ru := lc.RunnerUpScores; ru != nil && ru.Total < w.Total {
						return fmt.Errorf("record %d level change %s->%s: runner-up total %.6f beats winner total %.6f",
							i, lc.From, lc.To, ru.Total, w.Total)
					}
				}
			}
		}
		for _, pt := range r.LogDevices {
			if pt.Profile == "" || pt.Layout == "" || pt.Level == "" {
				return fmt.Errorf("record %d has a log-device point without profile, layout or level", i)
			}
			if pt.Devices < 1 {
				return fmt.Errorf("record %d log-device point %s/%s claims %d devices", i, pt.Layout, pt.Level, pt.Devices)
			}
			if pt.MultiPct < 0 || pt.MultiPct > 100 || pt.Committed < 0 {
				return fmt.Errorf("record %d log-device point %s/%s has invalid counters", i, pt.Layout, pt.Level)
			}
		}
		coalescedRatioOK := len(r.GroupCommit) == 0
		for _, pt := range r.GroupCommit {
			if pt.Profile == "" || pt.Layout == "" || pt.Level == "" {
				return fmt.Errorf("record %d has a group-commit point without profile, layout or level", i)
			}
			if pt.Devices < 1 || pt.Committed < 0 || pt.Coalesce < 0 {
				return fmt.Errorf("record %d group-commit point %s/%s has invalid counters", i, pt.Layout, pt.Level)
			}
			if pt.LogicalRecords < 0 || pt.PhysicalRecords < 0 || pt.PhysicalFlushes < 0 {
				return fmt.Errorf("record %d group-commit point %s/%s has negative log counters", i, pt.Layout, pt.Level)
			}
			if pt.RecordRatio < 0 || pt.RecordRatio > 1 {
				return fmt.Errorf("record %d group-commit point %s/%s has record ratio %f outside [0,1]", i, pt.Layout, pt.Level, pt.RecordRatio)
			}
			if pt.Coalesce == 0 && (pt.CoalescedRecords != 0 || (pt.LogicalRecords > 0 && pt.RecordRatio != 1)) {
				return fmt.Errorf("record %d group-commit point %s/%s claims coalescing with the accumulator off", i, pt.Layout, pt.Level)
			}
			if pt.Coalesce > 0 && pt.LogicalRecords > 0 {
				// The headline invariant of the sweep: write-combining keeps
				// physical flushes at or under half the logical record count
				// on the zipf-hotkey write shape.
				if 2*pt.PhysicalFlushes > pt.LogicalRecords {
					return fmt.Errorf("record %d group-commit point %s/%s: %d physical flushes exceed half of %d logical records",
						i, pt.Layout, pt.Level, pt.PhysicalFlushes, pt.LogicalRecords)
				}
				if pt.RecordRatio <= 0.5 {
					coalescedRatioOK = true
				}
			}
		}
		if !coalescedRatioOK {
			return fmt.Errorf("record %d has no coalesced group-commit point with record ratio <= 0.5", i)
		}
		// The coalescing win on the serialized device: on single-sata every
		// island level must be at least as fast with write-combining as
		// without it — the throughput side of the sweep's headline claim.
		sataOff := make(map[string]float64)
		for _, pt := range r.GroupCommit {
			if pt.Layout == "single-sata" && pt.Coalesce == 0 {
				sataOff[pt.Level] = pt.TPS
			}
		}
		for _, pt := range r.GroupCommit {
			if pt.Layout != "single-sata" || pt.Coalesce == 0 {
				continue
			}
			if off, ok := sataOff[pt.Level]; ok && pt.TPS < off {
				return fmt.Errorf("record %d group-commit point single-sata/%s: coalescing lost throughput (%.0f < %.0f)",
					i, pt.Level, pt.TPS, off)
			}
		}
		if f := r.Faults; f != nil {
			if f.Profile == "" || f.Layout == "" || f.Schedule == "" {
				return fmt.Errorf("record %d faults timeline is missing its profile, layout or schedule", i)
			}
			if len(f.Phases) == 0 {
				return fmt.Errorf("record %d faults timeline has no phases", i)
			}
			for _, ph := range f.Phases {
				if ph.Label == "" {
					return fmt.Errorf("record %d faults timeline has an unlabeled phase", i)
				}
				if ph.AvgTPS < 0 || ph.FromS < 0 || ph.ToS <= ph.FromS {
					return fmt.Errorf("record %d faults phase %s has invalid bounds or throughput", i, ph.Label)
				}
			}
			if f.Committed < 0 {
				return fmt.Errorf("record %d faults timeline has negative committed count", i)
			}
		}
		if hp := r.HarnessParallel; hp != nil {
			if hp.Concurrency < 1 || hp.PointWorkers < 1 {
				return fmt.Errorf("record %d harness_parallel claims concurrency %d with %d point workers", i, hp.Concurrency, hp.PointWorkers)
			}
			if hp.Points <= 0 {
				return fmt.Errorf("record %d harness_parallel measured no sweep points", i)
			}
			if hp.SerialWallMS <= 0 || hp.ParallelWallMS <= 0 {
				return fmt.Errorf("record %d harness_parallel has non-positive wall times (%.3f ms serial, %.3f ms parallel)",
					i, hp.SerialWallMS, hp.ParallelWallMS)
			}
			// Bit-identity is the contract the whole scheduler stands on; a
			// record that admits divergence is a determinism regression, not a
			// data point.
			if !hp.Identical {
				return fmt.Errorf("record %d harness_parallel reports non-identical serial and parallel results", i)
			}
			// The speedup must be the wall-time ratio it claims to be (1%
			// tolerance for rounding through the JSON float round-trip).
			want := hp.SerialWallMS / hp.ParallelWallMS
			if hp.Speedup < 0.99*want || hp.Speedup > 1.01*want {
				return fmt.Errorf("record %d harness_parallel speedup %.3f does not match its wall times (%.3f/%.3f = %.3f)",
					i, hp.Speedup, hp.SerialWallMS, hp.ParallelWallMS, want)
			}
			// With real concurrency available the pool must actually pay off;
			// 1.5x at >= 4-way is lenient enough for noisy CI runners, while a
			// single-core record (concurrency 1, speedup ~1) passes untouched.
			if hp.Concurrency >= 4 && hp.Speedup < 1.5 {
				return fmt.Errorf("record %d harness_parallel claims %d-way concurrency but only %.2fx speedup",
					i, hp.Concurrency, hp.Speedup)
			}
		}
		if ex := r.ExecutedStorage; ex != nil {
			if len(ex.Points) == 0 {
				return fmt.Errorf("record %d executed_storage has no points", i)
			}
			for _, pt := range ex.Points {
				if pt.Profile == "" || pt.Level == "" {
					return fmt.Errorf("record %d has an executed-storage point without profile or level", i)
				}
				if pt.MultiPct < 0 || pt.MultiPct > 100 || pt.Committed <= 0 {
					return fmt.Errorf("record %d executed-storage point %s/%s has invalid counters", i, pt.Profile, pt.Level)
				}
				switch pt.Mode {
				case "priced":
					if pt.TPS <= 0 {
						return fmt.Errorf("record %d priced point %s/%s has no virtual throughput", i, pt.Profile, pt.Level)
					}
				case "executed":
					if pt.MeasuredKTPS <= 0 {
						return fmt.Errorf("record %d executed point %s/%s has non-positive measured KTPS", i, pt.Profile, pt.Level)
					}
				default:
					return fmt.Errorf("record %d executed-storage point %s/%s has unknown mode %q", i, pt.Profile, pt.Level, pt.Mode)
				}
			}
			if len(ex.Profiles) == 0 {
				return fmt.Errorf("record %d executed_storage has no profile reports", i)
			}
			for _, pr := range ex.Profiles {
				if pr.Profile == "" {
					return fmt.Errorf("record %d has an unnamed executed-storage profile report", i)
				}
				if pr.RankBefore < -1 || pr.RankBefore > 1 || pr.RankAfter < -1 || pr.RankAfter > 1 {
					return fmt.Errorf("record %d executed-storage profile %s has rank correlation outside [-1,1]", i, pr.Profile)
				}
				// The identity fallback makes calibration monotone: a record
				// where the fitted factors made the ranking worse is corrupt.
				if pr.RankAfter < pr.RankBefore {
					return fmt.Errorf("record %d executed-storage profile %s: calibration worsened the rank correlation (%.3f -> %.3f)",
						i, pr.Profile, pr.RankBefore, pr.RankAfter)
				}
				for name, f := range pr.Factors {
					if f <= 0 {
						return fmt.Errorf("record %d executed-storage profile %s has non-positive factor %s", i, pr.Profile, name)
					}
				}
			}
			if ex.CrossoverProfile == "" {
				return fmt.Errorf("record %d executed_storage names no crossover profile", i)
			}
			// Real execution must back the priced model's crossover direction
			// on the chiplet machine — the sweep's headline claim.
			if !ex.CrossoverAgrees {
				return fmt.Errorf("record %d executed_storage: priced and executed modes disagree on the crossover direction on %s",
					i, ex.CrossoverProfile)
			}
		}
	}
	return nil
}

// checkScoreTerms validates one per-term score breakdown: a priced level name
// and five terms that sum to the recorded total. The scorer computes the total
// as exactly this left-to-right sum, so the JSON float round-trip (exact for
// float64) leaves only re-association noise — a loose absolute epsilon covers
// validators summing in the same order while still catching edited terms.
// A nil breakdown (older record) passes.
func checkScoreTerms(sr *atrapos.ScoreTermsRecord, which string) error {
	if sr == nil {
		return nil
	}
	if sr.Level == "" {
		return fmt.Errorf("%s score breakdown names no level", which)
	}
	sum := sr.Locality + sr.TxnState + sr.Commit + sr.Conflict + sr.Comm
	if diff := sum - sr.Total; diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("%s score breakdown for %s: terms sum to %.9f, total says %.9f",
			which, sr.Level, sum, sr.Total)
	}
	return nil
}

// verifyBenchJSON checks an existing BENCH.json on disk, so CI fails loudly
// when an appended trajectory record corrupted the file.
func verifyBenchJSON(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := checkBenchDocument(data); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// runDriftRecord measures the adaptive design under the drifting-hotspot
// workload, whose moving hot window forces repeated repartitionings: the
// resulting record carries real repartition diff sizes and the adaptation
// cost share.
func runDriftRecord(subscribers int, top *atrapos.Topology, txns, workers int, seed int64) (DesignRecord, error) {
	wl, err := atrapos.TATPDriftingHotspot(subscribers, atrapos.Seconds(0.005))
	if err != nil {
		return DesignRecord{}, err
	}
	sys, err := atrapos.Open(atrapos.Options{
		Design:   atrapos.DesignATraPos,
		Workload: wl,
		Topology: top,
		Adaptive: true,
		AdaptiveInterval: atrapos.IntervalConfig{
			Initial: atrapos.Seconds(0.001),
			Max:     atrapos.Seconds(0.008),
		},
		TimeCompression: 1000,
	})
	if err != nil {
		return DesignRecord{}, err
	}
	if _, err := sys.Run(atrapos.RunOptions{Transactions: txns / 4, Seed: seed, Workers: workers}); err != nil {
		return DesignRecord{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := sys.Run(atrapos.RunOptions{Transactions: txns, Seed: seed + 1, Workers: workers})
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return DesignRecord{}, err
	}
	n := res.Committed + res.Aborted
	dr := DesignRecord{
		Design:              "atrapos-adaptive-drift",
		Transactions:        n,
		WallNanos:           wall.Nanoseconds(),
		VirtualTPS:          res.ThroughputTPS,
		Committed:           res.Committed,
		Aborted:             res.Aborted,
		Repartitions:        res.Repartitions,
		AdaptationCostShare: res.AdaptationCostShare,
	}
	if n > 0 {
		dr.AllocsPerTxn = float64(after.Mallocs-before.Mallocs) / float64(n)
		dr.BytesPerTxn = float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
	}
	if wall > 0 {
		dr.WallTxnPerSec = float64(n) / wall.Seconds()
	}
	for _, d := range res.RepartitionDiffs {
		dr.RepartitionDiffs = append(dr.RepartitionDiffs, DiffRecord{
			ChangedTables:    d.ChangedTables,
			UnchangedTables:  d.UnchangedTables,
			MovedPartitions:  d.MovedPartitions,
			ReusedLockTables: d.ReusedLockTables,
			AffectedCores:    d.AffectedCores,
		})
	}
	return dr, nil
}

// appendTrajectory loads the existing BENCH.json trajectory and appends rec.
// The file is a JSON array of per-commit records; a legacy single-record
// file is promoted to a one-element array first.
func appendTrajectory(path string, rec BenchRecord) ([]BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return []BenchRecord{rec}, nil
		}
		return nil, err
	}
	var records []BenchRecord
	if err := json.Unmarshal(data, &records); err != nil {
		var single BenchRecord
		if err2 := json.Unmarshal(data, &single); err2 != nil {
			return nil, fmt.Errorf("bench: %s is neither a record array nor a single record: %w", path, err)
		}
		records = []BenchRecord{single}
	}
	return append(records, rec), nil
}
