package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"atrapos"
)

// DesignRecord is the measured hot-path profile of one design.
type DesignRecord struct {
	Design string `json:"design"`
	// Transactions is the number of measured transactions.
	Transactions int64 `json:"transactions"`
	// WallNanos is the host wall-clock time of the measured run.
	WallNanos int64 `json:"wall_nanos"`
	// WallTxnPerSec is how many simulated transactions the simulator itself
	// executes per host second: the number the hot-path work optimizes.
	WallTxnPerSec float64 `json:"wall_txn_per_sec"`
	// AllocsPerTxn is the average number of heap allocations per transaction
	// on the steady-state path (measured over the whole run, so per-run setup
	// is amortized; the partitioned designs must stay ~0).
	AllocsPerTxn float64 `json:"allocs_per_txn"`
	// BytesPerTxn is the average number of heap bytes per transaction.
	BytesPerTxn float64 `json:"bytes_per_txn"`
	// VirtualTPS is the modeled throughput of the design (virtual time),
	// recorded so a hot-path change that accidentally shifts the simulated
	// results is visible in the same file.
	VirtualTPS float64 `json:"virtual_tps"`
	Committed  int64   `json:"committed"`
	Aborted    int64   `json:"aborted"`
}

// BenchRecord is the BENCH.json document: one perf trajectory point.
type BenchRecord struct {
	GeneratedAt  string         `json:"generated_at"`
	GoVersion    string         `json:"go_version"`
	GOMAXPROCS   int            `json:"gomaxprocs"`
	Workers      int            `json:"workers"`
	Seed         int64          `json:"seed"`
	Transactions int            `json:"transactions"`
	Workload     string         `json:"workload"`
	Topology     string         `json:"topology"`
	Designs      []DesignRecord `json:"designs"`
}

// runBenchJSON measures every design's transaction hot path on the TATP mix
// and writes the result to path. The measurement intentionally bypasses the
// experiment harness: it calls System.Run directly so the recorded numbers
// are the per-transaction simulator cost, comparable across commits.
func runBenchJSON(path string, txns int, workers int, seed int64) error {
	if txns < 4 {
		return fmt.Errorf("-txns must be at least 4, got %d", txns)
	}
	const subscribers = 4000
	top, err := atrapos.NewTopology(4, 2)
	if err != nil {
		return err
	}
	rec := BenchRecord{
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Workers:      workers,
		Seed:         seed,
		Transactions: txns,
		Workload:     "TATP",
		Topology:     top.String(),
	}
	for _, d := range atrapos.Designs() {
		wl, err := atrapos.TATP(atrapos.TATPOptions{Subscribers: subscribers})
		if err != nil {
			return err
		}
		opts := atrapos.Options{Design: d, Workload: wl, Topology: top}
		if d == atrapos.DesignATraPos {
			opts.Adaptive = true
		}
		sys, err := atrapos.Open(opts)
		if err != nil {
			return fmt.Errorf("%v: %w", d, err)
		}
		// Warm up the reusable buffers, pools and caches.
		if _, err := sys.Run(atrapos.RunOptions{Transactions: txns / 4, Seed: seed, Workers: workers}); err != nil {
			return fmt.Errorf("%v warmup: %w", d, err)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := sys.Run(atrapos.RunOptions{Transactions: txns, Seed: seed + 1, Workers: workers})
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return fmt.Errorf("%v: %w", d, err)
		}
		n := res.Committed + res.Aborted
		dr := DesignRecord{
			Design:       d.String(),
			Transactions: n,
			WallNanos:    wall.Nanoseconds(),
			VirtualTPS:   res.ThroughputTPS,
			Committed:    res.Committed,
			Aborted:      res.Aborted,
		}
		if n > 0 {
			dr.AllocsPerTxn = float64(after.Mallocs-before.Mallocs) / float64(n)
			dr.BytesPerTxn = float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
		}
		if wall > 0 {
			dr.WallTxnPerSec = float64(n) / wall.Seconds()
		}
		rec.Designs = append(rec.Designs, dr)
	}
	out, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s:\n%s", path, out)
	return nil
}
