package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCommittedBenchJSONWellFormed validates the repository's committed
// trajectory file against the schema, so an appended record that corrupted it
// fails `go test ./...` as well as `atrapos-bench -verify`.
func TestCommittedBenchJSONWellFormed(t *testing.T) {
	if err := verifyBenchJSON(filepath.Join("..", "..", "BENCH.json")); err != nil {
		t.Fatal(err)
	}
}

// TestCheckBenchDocument exercises the well-formedness gate: valid documents
// pass, and every corruption mode an interrupted append could produce is
// rejected.
func TestCheckBenchDocument(t *testing.T) {
	valid := []BenchRecord{{
		GeneratedAt: "2026-01-01T00:00:00Z",
		Designs:     []DesignRecord{{Design: "plp", Transactions: 10}},
	}}
	data, err := json.Marshal(valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkBenchDocument(data); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	cases := map[string]string{
		"not json":          `{"generated`,
		"not an array":      `{"generated_at":"x"}`,
		"empty":             `[]`,
		"trailing data":     `[] []`,
		"unknown field":     `[{"generated_at":"x","designs":[{"design":"plp"}],"bogus":1}]`,
		"missing timestamp": `[{"designs":[{"design":"plp"}]}]`,
		"no designs":        `[{"generated_at":"x"}]`,
		"unnamed design":    `[{"generated_at":"x","designs":[{"transactions":1}]}]`,
		"negative counters": `[{"generated_at":"x","designs":[{"design":"plp","transactions":-1}]}]`,
		"bad trajectory":    `[{"generated_at":"x","designs":[{"design":"plp"}],"adaptive_granularity":{"profile":""}}]`,
		"score sum wrong":   `[{"generated_at":"x","designs":[{"design":"plp"}],"adaptive_granularity":{"profile":"p","start_level":"socket","final_level":"machine","committed":1,"level_changes":[{"at_nanos":1,"from":"socket","to":"machine","multisite_share":1,"cost":1,"affected_cores":2,"winner_scores":{"level":"machine","total":5,"locality":1,"txn_state":1,"commit":1,"conflict":1,"comm":0.5}}]}}]`,
		"score no level":    `[{"generated_at":"x","designs":[{"design":"plp"}],"adaptive_granularity":{"profile":"p","start_level":"socket","final_level":"machine","committed":1,"level_changes":[{"at_nanos":1,"from":"socket","to":"machine","multisite_share":1,"cost":1,"affected_cores":2,"winner_scores":{"level":"","total":5,"locality":1,"txn_state":1,"commit":1,"conflict":1,"comm":1}}]}}]`,
		"score wrong side":  `[{"generated_at":"x","designs":[{"design":"plp"}],"adaptive_granularity":{"profile":"p","start_level":"socket","final_level":"machine","committed":1,"level_changes":[{"at_nanos":1,"from":"socket","to":"machine","multisite_share":1,"cost":1,"affected_cores":2,"winner_scores":{"level":"die","total":5,"locality":1,"txn_state":1,"commit":1,"conflict":1,"comm":1}}]}}]`,
		"score upset":       `[{"generated_at":"x","designs":[{"design":"plp"}],"adaptive_granularity":{"profile":"p","start_level":"socket","final_level":"machine","committed":1,"level_changes":[{"at_nanos":1,"from":"socket","to":"machine","multisite_share":1,"cost":1,"affected_cores":2,"winner_scores":{"level":"machine","total":5,"locality":1,"txn_state":1,"commit":1,"conflict":1,"comm":1},"runner_up_scores":{"level":"socket","total":3,"locality":1,"txn_state":1,"commit":1,"conflict":0,"comm":0}}]}}]`,
		"bare device point": `[{"generated_at":"x","designs":[{"design":"plp"}],"log_devices":[{"profile":"chiplet-2s4d"}]}]`,
		"zero devices":      `[{"generated_at":"x","designs":[{"design":"plp"}],"log_devices":[{"profile":"p","layout":"l","island_level":"core","devices":0,"multisite_pct":0,"virtual_tps":1,"committed":1}]}]`,
		"bad device pct":    `[{"generated_at":"x","designs":[{"design":"plp"}],"log_devices":[{"profile":"p","layout":"l","island_level":"core","devices":1,"multisite_pct":400,"virtual_tps":1,"committed":1}]}]`,
		"bare faults":       `[{"generated_at":"x","designs":[{"design":"plp"}],"faults":{"profile":"chiplet-2s4d"}}]`,
		"faults no phases":  `[{"generated_at":"x","designs":[{"design":"plp"}],"faults":{"profile":"p","layout":"l","schedule":"s","committed":1,"phases":[],"dip_on_device_failure":true,"dip_on_socket_failure":true,"recovered_after_restore":true,"rehomed_logs":1,"converged":true}}]`,
		"faults bad phase":  `[{"generated_at":"x","designs":[{"design":"plp"}],"faults":{"profile":"p","layout":"l","schedule":"s","committed":1,"phases":[{"label":"healthy","from_s":10,"to_s":1,"avg_tps":5}],"dip_on_device_failure":true,"dip_on_socket_failure":true,"recovered_after_restore":true,"rehomed_logs":1,"converged":true}}]`,
		"faults unlabeled":  `[{"generated_at":"x","designs":[{"design":"plp"}],"faults":{"profile":"p","layout":"l","schedule":"s","committed":1,"phases":[{"label":"","from_s":1,"to_s":10,"avg_tps":5}],"dip_on_device_failure":true,"dip_on_socket_failure":true,"recovered_after_restore":true,"rehomed_logs":1,"converged":true}}]`,
		"faults negative":   `[{"generated_at":"x","designs":[{"design":"plp"}],"faults":{"profile":"p","layout":"l","schedule":"s","committed":-1,"phases":[{"label":"healthy","from_s":1,"to_s":10,"avg_tps":5}],"dip_on_device_failure":true,"dip_on_socket_failure":true,"recovered_after_restore":true,"rehomed_logs":1,"converged":true}}]`,
		"bare groupcommit":  `[{"generated_at":"x","designs":[{"design":"plp"}],"group_commit":[{"profile":"chiplet-2s4d"}]}]`,
		"groupcommit ratio": `[{"generated_at":"x","designs":[{"design":"plp"}],"group_commit":[{"profile":"p","layout":"single-sata","island_level":"core","devices":1,"coalesce_records":64,"virtual_tps":1,"committed":1,"logical_records":100,"physical_records":160,"coalesced_records":0,"physical_flushes":10,"ride_along_flushes":0,"physical_bytes":1,"record_ratio":1.6}]}]`,
		"groupcommit flush": `[{"generated_at":"x","designs":[{"design":"plp"}],"group_commit":[{"profile":"p","layout":"single-sata","island_level":"core","devices":1,"coalesce_records":64,"virtual_tps":1,"committed":1,"logical_records":100,"physical_records":50,"coalesced_records":50,"physical_flushes":80,"ride_along_flushes":0,"physical_bytes":1,"record_ratio":0.5}]}]`,
		"groupcommit off":   `[{"generated_at":"x","designs":[{"design":"plp"}],"group_commit":[{"profile":"p","layout":"single-sata","island_level":"core","devices":1,"coalesce_records":0,"virtual_tps":1,"committed":1,"logical_records":100,"physical_records":100,"coalesced_records":7,"physical_flushes":10,"ride_along_flushes":0,"physical_bytes":1,"record_ratio":1}]}]`,
		"groupcommit never": `[{"generated_at":"x","designs":[{"design":"plp"}],"group_commit":[{"profile":"p","layout":"single-sata","island_level":"core","devices":1,"coalesce_records":64,"virtual_tps":1,"committed":1,"logical_records":100,"physical_records":90,"coalesced_records":10,"physical_flushes":10,"ride_along_flushes":0,"physical_bytes":1,"record_ratio":0.9}]}]`,
		"groupcommit loss":  `[{"generated_at":"x","designs":[{"design":"plp"}],"group_commit":[{"profile":"p","layout":"single-sata","island_level":"core","devices":1,"coalesce_records":0,"virtual_tps":500,"committed":1,"logical_records":100,"physical_records":120,"coalesced_records":0,"physical_flushes":10,"ride_along_flushes":0,"physical_bytes":1,"record_ratio":1},{"profile":"p","layout":"single-sata","island_level":"core","devices":1,"coalesce_records":64,"virtual_tps":400,"committed":1,"logical_records":100,"physical_records":50,"coalesced_records":50,"physical_flushes":10,"ride_along_flushes":0,"physical_bytes":1,"record_ratio":0.5}]}]`,
		"parallel no conc":  `[{"generated_at":"x","designs":[{"design":"plp"}],"harness_parallel":{"concurrency":0,"point_workers":1,"points":12,"serial_wall_ms":100,"parallel_wall_ms":50,"speedup":2,"identical":true}}]`,
		"parallel diverged": `[{"generated_at":"x","designs":[{"design":"plp"}],"harness_parallel":{"concurrency":4,"point_workers":1,"points":12,"serial_wall_ms":100,"parallel_wall_ms":50,"speedup":2,"identical":false}}]`,
		"parallel mismatch": `[{"generated_at":"x","designs":[{"design":"plp"}],"harness_parallel":{"concurrency":4,"point_workers":1,"points":12,"serial_wall_ms":100,"parallel_wall_ms":50,"speedup":3.5,"identical":true}}]`,
		"parallel no gain":  `[{"generated_at":"x","designs":[{"design":"plp"}],"harness_parallel":{"concurrency":8,"point_workers":1,"points":12,"serial_wall_ms":100,"parallel_wall_ms":95,"speedup":1.0526315789473684,"identical":true}}]`,
		"parallel no wall":  `[{"generated_at":"x","designs":[{"design":"plp"}],"harness_parallel":{"concurrency":4,"point_workers":1,"points":12,"serial_wall_ms":0,"parallel_wall_ms":50,"speedup":2,"identical":true}}]`,
		"parallel 0 points": `[{"generated_at":"x","designs":[{"design":"plp"}],"harness_parallel":{"concurrency":4,"point_workers":1,"points":0,"serial_wall_ms":100,"parallel_wall_ms":50,"speedup":2,"identical":true}}]`,
		"executed no pts":   `[{"generated_at":"x","designs":[{"design":"plp"}],"executed_storage":{"points":[],"profiles":[],"crossover_profile":"chiplet-2s4d","crossover_agrees":true}}]`,
		"executed neg ktps": `[{"generated_at":"x","designs":[{"design":"plp"}],"executed_storage":{"points":[{"profile":"p","mode":"executed","multisite_pct":0,"island_level":"core","measured_ktps":-5,"committed":1}],"profiles":[{"profile":"p","rank_before":0.5,"rank_after":0.5,"calibrated":false,"factors":{},"crossover_priced":true,"crossover_executed":true}],"crossover_profile":"chiplet-2s4d","crossover_agrees":true}}]`,
		"executed bad mode": `[{"generated_at":"x","designs":[{"design":"plp"}],"executed_storage":{"points":[{"profile":"p","mode":"simulated","multisite_pct":0,"island_level":"core","virtual_tps":1,"committed":1}],"profiles":[{"profile":"p","rank_before":0.5,"rank_after":0.5,"calibrated":false,"factors":{},"crossover_priced":true,"crossover_executed":true}],"crossover_profile":"chiplet-2s4d","crossover_agrees":true}}]`,
		"executed rank oob": `[{"generated_at":"x","designs":[{"design":"plp"}],"executed_storage":{"points":[{"profile":"p","mode":"priced","multisite_pct":0,"island_level":"core","virtual_tps":1,"committed":1}],"profiles":[{"profile":"p","rank_before":0.5,"rank_after":1.5,"calibrated":true,"factors":{},"crossover_priced":true,"crossover_executed":true}],"crossover_profile":"chiplet-2s4d","crossover_agrees":true}}]`,
		"executed worse":    `[{"generated_at":"x","designs":[{"design":"plp"}],"executed_storage":{"points":[{"profile":"p","mode":"priced","multisite_pct":0,"island_level":"core","virtual_tps":1,"committed":1}],"profiles":[{"profile":"p","rank_before":0.9,"rank_after":0.4,"calibrated":true,"factors":{},"crossover_priced":true,"crossover_executed":true}],"crossover_profile":"chiplet-2s4d","crossover_agrees":true}}]`,
		"executed bad fac":  `[{"generated_at":"x","designs":[{"design":"plp"}],"executed_storage":{"points":[{"profile":"p","mode":"priced","multisite_pct":0,"island_level":"core","virtual_tps":1,"committed":1}],"profiles":[{"profile":"p","rank_before":0.5,"rank_after":0.5,"calibrated":true,"factors":{"logging":-2},"crossover_priced":true,"crossover_executed":true}],"crossover_profile":"chiplet-2s4d","crossover_agrees":true}}]`,
		"executed discord":  `[{"generated_at":"x","designs":[{"design":"plp"}],"executed_storage":{"points":[{"profile":"p","mode":"priced","multisite_pct":0,"island_level":"core","virtual_tps":1,"committed":1}],"profiles":[{"profile":"p","rank_before":0.5,"rank_after":0.5,"calibrated":false,"factors":{},"crossover_priced":true,"crossover_executed":false}],"crossover_profile":"chiplet-2s4d","crossover_agrees":false}}]`,
	}
	for name, doc := range cases {
		if err := checkBenchDocument([]byte(doc)); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
	withScores := `[{"generated_at":"x","designs":[{"design":"plp"}],"adaptive_granularity":{"profile":"p","start_level":"socket","final_level":"machine","committed":1,"level_changes":[{"at_nanos":1,"from":"socket","to":"machine","multisite_share":1,"cost":1,"affected_cores":2,"winner_scores":{"level":"machine","total":5,"locality":1,"txn_state":1,"commit":1,"conflict":1,"comm":1},"runner_up_scores":{"level":"socket","total":8,"locality":2,"txn_state":2,"commit":2,"conflict":1,"comm":1}}]}}]`
	if err := checkBenchDocument([]byte(withScores)); err != nil {
		t.Errorf("valid score-breakdown record rejected: %v", err)
	}
	withFaults := `[{"generated_at":"x","designs":[{"design":"plp"}],"faults":{"profile":"p","layout":"l","schedule":"s","committed":1,"phases":[{"label":"healthy","from_s":1,"to_s":10,"avg_tps":5}],"dip_on_device_failure":true,"dip_on_socket_failure":true,"recovered_after_restore":true,"rehomed_logs":1,"converged":true}}]`
	if err := checkBenchDocument([]byte(withFaults)); err != nil {
		t.Errorf("valid faults record rejected: %v", err)
	}
	withGroupCommit := `[{"generated_at":"x","designs":[{"design":"plp"}],"group_commit":[` +
		`{"profile":"p","layout":"single-sata","island_level":"core","devices":1,"coalesce_records":0,"virtual_tps":400,"committed":1,"logical_records":100,"physical_records":120,"coalesced_records":0,"physical_flushes":12,"ride_along_flushes":8,"physical_bytes":9600,"record_ratio":1},` +
		`{"profile":"p","layout":"single-sata","island_level":"core","devices":1,"coalesce_records":64,"virtual_tps":900,"committed":1,"logical_records":100,"physical_records":50,"coalesced_records":70,"physical_flushes":2,"ride_along_flushes":18,"physical_bytes":4800,"record_ratio":0.3}]}]`
	if err := checkBenchDocument([]byte(withGroupCommit)); err != nil {
		t.Errorf("valid group-commit record rejected: %v", err)
	}
	withExecuted := `[{"generated_at":"x","designs":[{"design":"plp"}],"executed_storage":{"points":[` +
		`{"profile":"chiplet-2s4d","mode":"priced","multisite_pct":0,"island_level":"core","virtual_tps":1200,"committed":400},` +
		`{"profile":"chiplet-2s4d","mode":"executed","multisite_pct":0,"island_level":"core","measured_ktps":850.5,"committed":400}],` +
		`"profiles":[{"profile":"chiplet-2s4d","rank_before":0.4,"rank_after":0.8,"calibrated":true,` +
		`"factors":{"management":1,"execution":1,"communication":1.2,"locking":0.8,"logging":2.5},` +
		`"crossover_priced":true,"crossover_executed":true}],` +
		`"crossover_profile":"chiplet-2s4d","crossover_agrees":true}}]`
	if err := checkBenchDocument([]byte(withExecuted)); err != nil {
		t.Errorf("valid executed-storage record rejected: %v", err)
	}
	// A multi-core record with a real speedup and a single-core record whose
	// pool degraded to serial (concurrency 1, speedup ~1) must both pass.
	for name, doc := range map[string]string{
		"multi-core":  `[{"generated_at":"x","designs":[{"design":"plp"}],"harness_parallel":{"concurrency":8,"point_workers":1,"points":12,"serial_wall_ms":1000,"parallel_wall_ms":250,"speedup":4,"identical":true}}]`,
		"single-core": `[{"generated_at":"x","designs":[{"design":"plp"}],"harness_parallel":{"concurrency":1,"point_workers":1,"points":12,"serial_wall_ms":1000,"parallel_wall_ms":1010,"speedup":0.9900990099009901,"identical":true}}]`,
	} {
		if err := checkBenchDocument([]byte(doc)); err != nil {
			t.Errorf("valid %s harness_parallel record rejected: %v", name, err)
		}
	}
}

// TestAppendTrajectoryRoundTrip: appending to a legacy single-record file
// promotes it to an array, and the result still passes the schema gate.
func TestAppendTrajectoryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")
	legacy := BenchRecord{GeneratedAt: "2026-01-01T00:00:00Z", Designs: []DesignRecord{{Design: "plp"}}}
	data, _ := json.Marshal(legacy)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	next := BenchRecord{GeneratedAt: "2026-01-02T00:00:00Z", Designs: []DesignRecord{{Design: "atrapos"}}}
	records, err := appendTrajectory(path, next)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("want 2 records, got %d", len(records))
	}
	out, _ := json.Marshal(records)
	if err := checkBenchDocument(out); err != nil {
		t.Fatalf("round-tripped trajectory malformed: %v", err)
	}
}
