// Command atrapos-bench reproduces the tables and figures of the ATraPos
// paper's evaluation section.
//
// Usage:
//
//	atrapos-bench -list
//	atrapos-bench -experiment fig2
//	atrapos-bench -experiment all -scale quick
//	atrapos-bench -experiment fig8 -scale paper
//
// The quick scale (default) runs every experiment on a simulated 4-socket
// machine with small datasets in seconds; the paper scale uses the 8-socket,
// 80-core configuration and the paper's dataset sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"atrapos"
)

// runFuzz runs n composed fuzz scenarios from the base seed and reports every
// invariant violation with its minimal reproducer; any failure is fatal. The
// scenarios fan out across parallel goroutines; verdicts are independent of
// the concurrency (each scenario derives everything from its own seed).
func runFuzz(n int, seed int64, parallel int) error {
	start := time.Now()
	rep, err := atrapos.FuzzScenarios(atrapos.FuzzOptions{Scenarios: n, Seed: seed, Parallel: parallel})
	if err != nil {
		return err
	}
	if rep.Failed() {
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "scenario %d (seed %d): %s\n  scenario: %s\n  reproduce: %s\n",
				f.Scenario, f.Seed, f.Err, f.Descr, f.Reproduce)
		}
		return fmt.Errorf("%d of %d scenarios violated an invariant", len(rep.Failures), rep.Scenarios)
	}
	fmt.Printf("fuzz: %d scenarios, all invariants held (%v)\n", rep.Scenarios, time.Since(start).Round(time.Millisecond))
	return nil
}

// runTraced executes the traced adaptive-drift scenario and writes the trace
// and metrics documents. RunTracedDrift validates both documents itself
// (Chrome-trace schema, CSV header and row shape, ring drop accounting), so a
// zero exit means the files are well-formed.
func runTraced(scale atrapos.Scale, tracePath, metricsPath string) error {
	start := time.Now()
	res, err := atrapos.RunTracedDrift(scale, tracePath, metricsPath)
	if err != nil {
		return err
	}
	fmt.Printf("traced drift: profile=%s start=%s final=%s committed=%d decisions=%d level_changes=%d dropped_spans=%d (%v)\n",
		res.Trajectory.Profile, res.Trajectory.StartLevel, res.Trajectory.FinalLevel,
		res.Trajectory.Committed, res.Decisions, len(res.Trajectory.Changes), res.DroppedSpans,
		time.Since(start).Round(time.Millisecond))
	if tracePath != "" {
		fmt.Printf("trace:   %s (%d bytes, load at https://ui.perfetto.dev)\n", tracePath, len(res.Trace))
	}
	if metricsPath != "" {
		fmt.Printf("metrics: %s (%d bytes)\n", metricsPath, len(res.Metrics))
	}
	return nil
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or \"all\"")
		scaleName  = flag.String("scale", "quick", "experiment scale: quick or paper")
		profile    = flag.String("profile", "", "machine profile to run on (see -list-profiles); empty uses the scale's own machine")
		list       = flag.Bool("list", false, "list the available experiments and exit")
		listProf   = flag.Bool("list-profiles", false, "list the available machine profiles and exit")
		seed       = flag.Int64("seed", 42, "random seed")
		workers    = flag.Int("workers", 0, "number of worker goroutines (0 = automatic)")
		jsonBench  = flag.Bool("json", false, "measure the per-design transaction hot path and write BENCH.json")
		jsonOut    = flag.String("out", "BENCH.json", "output path of the -json benchmark record")
		jsonTxns   = flag.Int("txns", 40000, "transactions measured per design in -json mode")
		verifyJSON = flag.Bool("verify", false, "validate BENCH.json (see -out) against the trajectory schema and exit")
		fuzzN      = flag.Int("fuzz", 0, "run N seeded fuzz scenarios (composed workload/machine/layout/fault schedules) and check every standing invariant")
		tracePath  = flag.String("trace", "", "run the traced adaptive-drift scenario and write a Perfetto-loadable Chrome trace to this path")
		metricsCSV = flag.String("metrics", "", "with -trace (or alone): write the planner-boundary metrics samples as CSV to this path")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep points / fuzz scenarios / experiments run concurrently (1 = serial); results are bit-identical at any value")
	)
	flag.Parse()

	if *tracePath != "" || *metricsCSV != "" {
		scale := atrapos.QuickScale()
		if *scaleName == "paper" {
			scale = atrapos.PaperScale()
		}
		scale.Seed = *seed
		scale.Profile = *profile
		if err := runTraced(scale, *tracePath, *metricsCSV); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *fuzzN > 0 {
		if err := runFuzz(*fuzzN, *seed, *parallel); err != nil {
			fmt.Fprintf(os.Stderr, "fuzz: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *verifyJSON {
		if err := verifyBenchJSON(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "verify: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s is a well-formed trajectory\n", *jsonOut)
		return
	}

	if *listProf {
		fmt.Println("available machine profiles:")
		for _, p := range atrapos.Profiles() {
			fmt.Printf("  %-14s %s\n", p.Name, p.Description)
		}
		return
	}
	if *profile != "" {
		if _, err := atrapos.BuildProfile(*profile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *jsonBench {
		w := *workers
		if w <= 0 {
			w = 1 // single worker: stable per-transaction numbers
		}
		if err := runBenchJSON(*jsonOut, *jsonTxns, w, *seed, *profile, *parallel); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println("available experiments:")
		for _, id := range atrapos.Experiments() {
			fmt.Printf("  %s\n", id)
		}
		return
	}

	var scale atrapos.Scale
	switch *scaleName {
	case "quick":
		scale = atrapos.QuickScale()
	case "paper":
		scale = atrapos.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or paper)\n", *scaleName)
		os.Exit(2)
	}
	scale.Seed = *seed
	scale.Workers = *workers
	scale.Profile = *profile
	scale.Parallel = *parallel

	run := func(id string) error {
		start := time.Now()
		tbl, err := atrapos.RunExperiment(id, scale)
		if err != nil {
			return err
		}
		fmt.Println(tbl.String())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *experiment == "all" {
		// The registry fans out across -parallel goroutines; tables print in
		// registry order with per-experiment wall time once everything landed.
		start := time.Now()
		results, err := atrapos.RunAllExperimentsTimed(scale)
		failed := false
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, r.Err)
				failed = true
				continue
			}
			fmt.Println(r.Table.String())
			fmt.Printf("(%s completed in %v)\n\n", r.ID, r.Wall.Round(time.Millisecond))
		}
		if err != nil || failed {
			os.Exit(1)
		}
		fmt.Printf("all %d experiments completed in %v at -parallel %d\n",
			len(results), time.Since(start).Round(time.Millisecond), *parallel)
		return
	}
	if err := run(*experiment); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", *experiment, err)
		os.Exit(1)
	}
}
