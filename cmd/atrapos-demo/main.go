// Command atrapos-demo shows ATraPos adapting to a workload change: it runs
// the TATP benchmark on a simulated multisocket machine, switches the
// transaction mix partway through, and prints the throughput time line, the
// repartitioning activity and the partitioning before and after.
package main

import (
	"flag"
	"fmt"
	"os"

	"atrapos"
)

func main() {
	var (
		sockets     = flag.Int("sockets", 4, "number of processor sockets to simulate")
		cores       = flag.Int("cores", 4, "cores per socket")
		subscribers = flag.Int("subscribers", 20000, "TATP subscriber count")
		seconds     = flag.Float64("seconds", 0.06, "virtual duration of the run (seconds)")
	)
	flag.Parse()

	top, err := atrapos.NewTopology(*sockets, *cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The workload starts as update-heavy and switches to the read-only
	// GetNewDest transaction halfway through the run.
	half := atrapos.Seconds(*seconds / 2)
	wl, err := atrapos.TATP(atrapos.TATPOptions{
		Subscribers: *subscribers,
		MixAt: func(at atrapos.VirtualTime) map[string]float64 {
			if at < half {
				return map[string]float64{"UpdSubData": 1}
			}
			return map[string]float64{"GetNewDest": 1}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Map the paper's 1 s / 8 s monitoring intervals onto the short virtual
	// duration of the demo so the adaptation is visible.
	interval := atrapos.IntervalConfig{
		Initial:         atrapos.Seconds(*seconds / 40),
		Max:             atrapos.Seconds(*seconds / 5),
		StableThreshold: 0.10,
		History:         5,
	}
	sys, err := atrapos.Open(atrapos.Options{
		Design:           atrapos.DesignATraPos,
		Workload:         wl,
		Topology:         top,
		Adaptive:         true,
		AdaptiveInterval: interval,
		TimeCompression:  30 / *seconds,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("machine: %s\n\ninitial placement:\n", top)
	printPlacement(sys)

	res, err := sys.Run(atrapos.RunOptions{
		Duration:     atrapos.Seconds(*seconds),
		Seed:         1,
		SampleWindow: atrapos.Seconds(*seconds / 20),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("\nthroughput over (virtual) time:\n")
	for _, s := range res.Series {
		fmt.Printf("  t=%6.3fs  %10.0f TPS\n", s.At.Seconds(), s.Throughput)
	}
	fmt.Printf("\ncommitted: %d, aborted: %d, throughput: %.0f TPS\n", res.Committed, res.Aborted, res.ThroughputTPS)
	fmt.Printf("repartitionings: %d (total repartitioning time %.2f ms)\n",
		res.Repartitions, res.RepartitionTime.Seconds()*1e3)

	fmt.Printf("\nfinal placement:\n")
	printPlacement(sys)
}

func printPlacement(sys *atrapos.System) {
	p := sys.Placement()
	for _, name := range p.TableNames() {
		tp := p.Tables[name]
		fmt.Printf("  %-18s %2d partitions on cores %v\n", name, tp.NumPartitions(), tp.Cores)
	}
}
